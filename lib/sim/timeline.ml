module Power = Dpm_disk.Power
module Rpm = Dpm_disk.Rpm
module Specs = Dpm_disk.Specs

type state =
  | Ready of int
  | Changing of { from_level : int; to_level : int }
  | Spinning_down
  | Standby
  | Spinning_up

type mark =
  | Retry of int
  | Remap of int
  | Redirect of int
  | Killed
  | Directive_spin_down
  | Directive_spin_up
  | Directive_set_rpm of int
  | Gap_decision of { predicted : float; level : int; spin_down : bool }
  | Dispatch of { disc : Config.sched; pos : int; arrival : float }
      (** One scheduler dispatch decision ({!Dpm_sim.Sched}): the queue
          discipline, the chosen head position (stripe units, post-remap
          for [Sstf_remap]) and the request's enqueue time.  The mark's
          own [t] is the dispatch time, so [t - arrival] is the queue
          wait and {!check} can replay the discipline's pick. *)

type event =
  | Span of { disk : int; state : state; t0 : float; t1 : float }
  | Service of {
      disk : int;
      level : int;
      arrival : float;
      t0 : float;
      t1 : float;
      bytes : int;
    }
  | Occupy of { disk : int; level : int; t0 : float; t1 : float }
  | Aborted of { disk : int; t0 : float; t1 : float; fraction : float }
  | Mark of { disk : int; t : float; mark : mark }
  | Sim_end of float

(* --- recording --- *)

type sink = {
  mutable rev : event list;
  mutable s_scheme : string;
  mutable s_program : string;
  mutable s_analytic : bool;
  mutable s_fleet : string list;
  mutable s_taps : (event -> unit) list;
      (* online consumers, notified synchronously by [emit]; reversed
         attachment order, which is irrelevant because taps must be
         observational *)
}

let sink () =
  {
    rev = [];
    s_scheme = "";
    s_program = "";
    s_analytic = false;
    s_fleet = [];
    s_taps = [];
  }

let emit s ev =
  s.rev <- ev :: s.rev;
  match s.s_taps with
  | [] -> ()
  | taps -> List.iter (fun f -> f ev) taps

let on_emit s f = s.s_taps <- f :: s.s_taps

let set_label s ~scheme ~program =
  s.s_scheme <- scheme;
  s.s_program <- program

let set_analytic s = s.s_analytic <- true
let set_fleet s fleet = s.s_fleet <- fleet

type t = {
  t_scheme : string;
  t_program : string;
  t_analytic : bool;
  t_fleet : string list;
      (* model registry slugs, round-robin by disk id; [] = homogeneous *)
  t_events : event list; (* emission order *)
}

let contents s =
  {
    t_scheme = s.s_scheme;
    t_program = s.s_program;
    t_analytic = s.s_analytic;
    t_fleet = s.s_fleet;
    t_events = List.rev s.rev;
  }

let events t = t.t_events
let scheme t = t.t_scheme
let program t = t.t_program
let is_analytic t = t.t_analytic
let fleet t = t.t_fleet

let event_disk = function
  | Span { disk; _ }
  | Service { disk; _ }
  | Occupy { disk; _ }
  | Aborted { disk; _ }
  | Mark { disk; _ } ->
      Some disk
  | Sim_end _ -> None

let ndisks t =
  List.fold_left
    (fun acc ev ->
      match event_disk ev with Some d -> max acc (d + 1) | None -> acc)
    0 t.t_events

let sim_end t =
  let explicit =
    List.fold_left
      (fun acc ev -> match ev with Sim_end s -> Some s | _ -> acc)
      None t.t_events
  in
  match explicit with
  | Some s -> s
  | None ->
      List.fold_left
        (fun acc ev ->
          match ev with
          | Span { t1; _ } | Service { t1; _ } | Occupy { t1; _ }
          | Aborted { t1; _ } ->
              Float.max acc t1
          | Mark { t; _ } -> Float.max acc t
          | Sim_end s -> Float.max acc s)
        0.0 t.t_events

(* --- re-integration: energy from the event log and the Power tables
   alone.  The engine's own accounting lives in Disk_state; nothing here
   reads it. --- *)

type energy = { per_disk : float array; total : float }

let span_power specs = function
  | Ready l -> Power.idle specs ~level:l
  | Changing { from_level; to_level } ->
      Power.idle specs ~level:(max from_level to_level)
  | Spinning_down -> Power.spin_down_power specs
  | Standby -> Power.standby specs
  | Spinning_up -> Power.spin_up_power specs

(* Per-disk model resolution, shared by re-integration and checking: an
   explicit [?fleet] wins; otherwise the log's own fleet label (model
   registry slugs) is resolved, falling back to the homogeneous [specs]
   when the label is absent or names an unknown model (a partially
   resolved fleet would misalign the round-robin). *)
let fleet_models ~specs ~fleet t =
  let models =
    match fleet with
    | Some fl -> fl
    | None ->
        let resolved = List.map Specs.of_name_opt t.t_fleet in
        if t.t_fleet <> [] && List.for_all Option.is_some resolved then
          Array.of_list (List.map Option.get resolved)
        else [||]
  in
  let n = Array.length models in
  fun disk -> if n = 0 then specs else models.(disk mod n)

let resolve_models ?(specs = Config.default.Config.specs) ?fleet t =
  fleet_models ~specs ~fleet t

let reintegrate ?(specs = Config.default.Config.specs) ?fleet t =
  let model = fleet_models ~specs ~fleet t in
  let nd = ndisks t in
  let per_disk = Array.make nd 0.0 in
  let add d e = per_disk.(d) <- per_disk.(d) +. e in
  List.iter
    (fun ev ->
      match ev with
      | Span { disk; state; t0; t1 } ->
          (* Zero-width spans carry no energy; skipping them also keeps a
             zero-time spin transition (the flash tier) from multiplying
             an infinite transition power by a zero duration. *)
          if t1 > t0 then add disk (span_power (model disk) state *. (t1 -. t0))
      | Service { disk; level; t0; t1; _ } | Occupy { disk; level; t0; t1 } ->
          add disk (Power.active (model disk) ~level *. (t1 -. t0))
      | Aborted { disk; fraction; _ } ->
          add disk (Power.aborted_spin_up_energy (model disk) ~fraction)
      | Mark _ | Sim_end _ -> ())
    t.t_events;
  { per_disk; total = Array.fold_left ( +. ) 0.0 per_disk }

(* --- invariant checking --- *)

(* A residency-like item: spans, busy intervals and aborted spin-ups all
   occupy wall time on one disk. *)
type item = I_state of state | I_busy of int | I_abort

let item_of = function
  | Span { state; _ } -> Some (I_state state)
  | Service { level; _ } | Occupy { level; _ } -> Some (I_busy level)
  | Aborted _ -> Some I_abort
  | Mark _ | Sim_end _ -> None

let item_name = function
  | I_state (Ready l) -> Printf.sprintf "ready(%d)" l
  | I_state (Changing { from_level; to_level }) ->
      Printf.sprintf "changing(%d->%d)" from_level to_level
  | I_state Spinning_down -> "spin_down"
  | I_state Standby -> "standby"
  | I_state Spinning_up -> "spin_up"
  | I_busy l -> Printf.sprintf "busy(%d)" l
  | I_abort -> "aborted"

(* Whether [next] may immediately follow a disk that has settled in
   [Ready l].  Chained operations may elide zero-length residencies, so
   a new modulation or a spin-down may start in the same instant. *)
let from_ready l next =
  match next with
  | I_state (Ready l') | I_busy l' -> l' = l
  | I_state (Changing { from_level; _ }) -> from_level = l
  | I_state Spinning_down -> true
  | I_state Standby | I_state Spinning_up | I_abort -> false

let from_standby next =
  match next with
  | I_state Standby | I_state Spinning_up | I_abort -> true
  | I_state (Ready _) | I_state (Changing _) | I_state Spinning_down
  | I_busy _ ->
      false

let admissible ~top prev next =
  match prev with
  | I_state (Ready l) | I_busy l -> from_ready l next
  | I_state (Changing { from_level = f; to_level = tl }) -> (
      match next with
      | I_state (Changing { from_level = f2; to_level = t2 })
        when f2 = f && t2 = tl ->
          true (* the same modulation, charged in pieces *)
      | _ -> from_ready tl next)
  | I_state Spinning_down -> (
      match next with I_state Spinning_down -> true | _ -> from_standby next)
  | I_state Spinning_up -> (
      match next with I_state Spinning_up -> true | _ -> from_ready top next)
  | I_state Standby -> from_standby next
  | I_abort -> from_standby next

let level_ok ~top l = l >= 0 && l <= top

let item_levels_ok ~top = function
  | I_state (Ready l) | I_busy l -> level_ok ~top l
  | I_state (Changing { from_level; to_level }) ->
      level_ok ~top from_level && level_ok ~top to_level
  | I_state Spinning_down | I_state Standby | I_state Spinning_up | I_abort ->
      true

(* One dispatch decision as logged: emission-order position doubles as
   the FCFS sequence number. *)
type disp = { d_t : float; d_disc : Config.sched; d_pos : int; d_arr : float }

(* Replay a disk's dispatch decisions against its queue discipline.

   At decision [i] the requests certainly still queued are the later
   dispatches already enqueued: [candidates = {j > i : arr_j < t_i} ∪
   {i}] (strict [<]: a request enqueued exactly at the dispatch instant
   may or may not have been visible).  The scheduler optimized over a
   superset of the candidates, so its pick must be at least as good as
   the best candidate — testing against the subset is sound (never
   rejects a legal log) while still catching reordered or fabricated
   logs.  SCAN direction state threads across decisions, which is
   exactly the "monotone between reversals" invariant. *)
let check_dispatches ~report ~tol disk (services : (float * float) list)
    (clean : bool) (disps : disp list) =
  (* [report] consumes rendered strings; rebinding a ksprintf wrapper
     here keeps the format calls below polymorphic in arity. *)
  let err disk fmt = Printf.ksprintf (report disk) fmt in
  let ds = Array.of_list disps in
  let n = Array.length ds in
  let head = ref 0 in
  let dirup = ref true in
  (* Completion of the k-th service, for the work-conservation bound on
     fault-free lanes where services pair 1:1 with dispatches. *)
  let svc_end = Array.of_list (List.map snd services) in
  let conserving = clean && Array.length svc_end = n in
  for i = 0 to n - 1 do
    let d = ds.(i) in
    if i > 0 && d.d_t < ds.(i - 1).d_t -. tol then
      err disk "dispatch times not monotone at %g" d.d_t;
    if d.d_arr > d.d_t +. tol then
      err disk "dispatch at %g precedes its request's arrival %g" d.d_t d.d_arr;
    let cands = ref [ d ] in
    for j = i + 1 to n - 1 do
      if ds.(j).d_arr < d.d_t -. tol then cands := ds.(j) :: !cands
    done;
    let cands = !cands in
    let dist p = abs (p - !head) in
    let best f ok =
      List.fold_left
        (fun acc c -> if ok c.d_pos then f acc c.d_pos else acc)
        max_int cands
    in
    (match d.d_disc with
    | Config.Fcfs ->
        List.iter
          (fun c ->
            if c.d_arr < d.d_arr -. tol then
              err disk
                "fcfs dispatch at %g serves arrival %g before queued arrival %g"
                d.d_t d.d_arr c.d_arr)
          cands
    | Config.Sstf | Config.Sstf_remap ->
        let nearest =
          List.fold_left (fun acc c -> min acc (dist c.d_pos)) max_int cands
        in
        if dist d.d_pos > nearest then
          err disk
            "sstf dispatch at %g seeks %d units from %d but a request %d \
             units away was queued"
            d.d_t (dist d.d_pos) !head nearest
    | Config.Scan ->
        let up_best = best min (fun p -> p >= !head) in
        let down_best =
          let m =
            List.fold_left
              (fun acc c -> if c.d_pos <= !head then max acc c.d_pos else acc)
              min_int cands
          in
          m
        in
        if !dirup then begin
          if up_best < max_int then begin
            if d.d_pos < !head then
              err disk
                "scan dispatch at %g reverses below head %d with an upward \
                 request at %d queued"
                d.d_t !head up_best
            else if d.d_pos > up_best then
              err disk "scan dispatch at %g skips nearer upward pos %d" d.d_t
                up_best
          end
          else if d.d_pos < !head then begin
            dirup := false;
            if down_best > min_int && d.d_pos < down_best then
              err disk "scan dispatch at %g skips nearer downward pos %d"
                d.d_t down_best
          end
        end
        else begin
          if down_best > min_int then begin
            if d.d_pos > !head then
              err disk
                "scan dispatch at %g reverses above head %d with a downward \
                 request at %d queued"
                d.d_t !head down_best
            else if d.d_pos < down_best then
              err disk "scan dispatch at %g skips nearer downward pos %d"
                d.d_t down_best
          end
          else if d.d_pos > !head then begin
            dirup := true;
            if up_best < max_int && d.d_pos > up_best then
              err disk "scan dispatch at %g skips nearer upward pos %d" d.d_t
                up_best
          end
        end
    | Config.Clook ->
        let up_best = best min (fun p -> p >= !head) in
        let any_best = best min (fun _ -> true) in
        if d.d_pos >= !head then begin
          if up_best < d.d_pos then
            err disk "c-look dispatch at %g skips nearer forward pos %d" d.d_t
              up_best
        end
        else if d.d_pos > any_best then
          err disk "c-look wrap at %g lands on %d, not the lowest queued %d"
            d.d_t d.d_pos any_best);
    head := d.d_pos;
    if conserving then begin
      let prev_end = if i = 0 then 0.0 else svc_end.(i - 1) in
      let earliest =
        List.fold_left (fun acc c -> Float.min acc c.d_arr) d.d_arr cands
      in
      if d.d_t > Float.max prev_end earliest +. tol then
        err disk
          "dispatch at %g idles: previous service ended %g, earliest queued \
           arrival %g"
          d.d_t prev_end earliest
    end
  done

let check ?(specs = Config.default.Config.specs) ?fleet t =
  let model = fleet_models ~specs ~fleet t in
  let nd = ndisks t in
  let s_end = sim_end t in
  let tol = 1e-9 *. Float.max 1.0 s_end in
  let errors = ref [] in
  let err disk fmt =
    Printf.ksprintf (fun m -> errors := Printf.sprintf "disk %d: %s" disk m :: !errors) fmt
  in
  let killed = Array.make (max 1 nd) None in
  List.iter
    (fun ev ->
      match ev with
      | Mark { disk; t; mark = Killed } -> killed.(disk) <- Some t
      | Aborted { disk; fraction; _ } ->
          if fraction < 0.0 || fraction > 1.0 then
            err disk "aborted spin-up fraction %g outside [0, 1]" fraction
      | _ -> ())
    t.t_events;
  for disk = 0 to nd - 1 do
    let top = Rpm.max_level (model disk) in
    let items =
      List.filter_map
        (fun ev ->
          match event_disk ev with
          | Some d when d = disk -> (
              match item_of ev with
              | Some it -> (
                  match ev with
                  | Span { t0; t1; _ }
                  | Service { t0; t1; _ }
                  | Occupy { t0; t1; _ }
                  | Aborted { t0; t1; _ } ->
                      Some (it, t0, t1)
                  | _ -> None)
              | None -> None)
          | _ -> None)
        t.t_events
    in
    (* Well-formedness, shared by both modes. *)
    List.iter
      (fun (it, t0, t1) ->
        if t1 < t0 then
          err disk "%s: negative duration [%g, %g]" (item_name it) t0 t1;
        if not (item_levels_ok ~top it) then
          err disk "%s: level out of range (top %d)" (item_name it) top)
      items;
    if t.t_analytic then begin
      (* Oracle-reconstructed logs: monotone starts and full coverage of
         [0, sim_end]; service may overlap the tail slack, and a direct
         modulation charged on top of a too-short gap at the head of the
         run may be back-dated before t = 0. *)
      let sorted =
        List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b) items
      in
      ignore
        (List.fold_left
           (fun prev (_, t0, _) ->
             if t0 < prev -. tol then err disk "starts not monotone at %g" t0;
             Float.max prev t0)
           Float.neg_infinity sorted);
      let covered =
        List.fold_left
          (fun edge (_, t0, t1) ->
            if t0 > edge +. tol then err disk "coverage gap [%g, %g]" edge t0;
            Float.max edge t1)
          0.0 sorted
      in
      if covered < s_end -. tol && items <> [] then
        err disk "coverage ends at %g, before sim end %g" covered s_end
    end
    else begin
      (* Engine logs: spans are exactly contiguous from 0 and every
         adjacency is an automaton edge. *)
      (match items with
      | [] ->
          if s_end > tol && killed.(disk) = None then
            err disk "no residency recorded over [0, %g]" s_end
      | (first, t0, _) :: _ ->
          if t0 <> 0.0 then err disk "first residency starts at %g, not 0" t0;
          if not (from_ready top first) then
            err disk "illegal initial state %s (disks start ready at top)"
              (item_name first));
      let rec walk = function
        | (p, _, p1) :: ((n, n0, _) :: _ as rest) ->
            if n0 <> p1 then
              err disk "%s..%s: gap or overlap (%.17g -> %.17g)" (item_name p)
                (item_name n) p1 n0;
            if not (admissible ~top p n) then
              err disk "illegal transition %s -> %s at %g" (item_name p)
                (item_name n) n0;
            walk rest
        | _ -> ()
      in
      walk items;
      let last_end =
        List.fold_left (fun _ (_, _, t1) -> t1) 0.0 items
      in
      match killed.(disk) with
      | Some k ->
          if Float.abs (last_end -. k) > tol && items <> [] then
            err disk "residency ends at %g but the disk was killed at %g"
              last_end k
      | None ->
          if last_end < s_end -. tol then
            err disk "residency ends at %g, before sim end %g" last_end s_end
    end;
    (* Per-queue legality: on any one disk, Service intervals never
       overlap (the head serves one request at a time), and logged
       dispatch decisions must replay under their queue discipline. *)
    let services =
      List.stable_sort
        (fun (a, _) (b, _) -> compare a b)
        (List.filter_map
           (fun ev ->
             match ev with
             | Service { disk = d; t0; t1; _ } when d = disk -> Some (t0, t1)
             | _ -> None)
           t.t_events)
    in
    ignore
      (List.fold_left
         (fun prev_end (t0, t1) ->
           if t0 < prev_end -. tol then
             err disk "service intervals overlap: [%g, %g] starts before %g"
               t0 t1 prev_end;
           Float.max prev_end t1)
         0.0 services);
    let clean =
      not
        (List.exists
           (fun ev ->
             match ev with
             | Mark { disk = d; mark; _ } when d = disk -> (
                 match mark with
                 | Retry _ | Remap _ | Redirect _ | Killed -> true
                 | Directive_spin_down | Directive_spin_up
                 | Directive_set_rpm _ | Gap_decision _ | Dispatch _ ->
                     false)
             | _ -> false)
           t.t_events)
    in
    let disps =
      List.filter_map
        (fun ev ->
          match ev with
          | Mark { disk = d; t; mark = Dispatch { disc; pos; arrival } }
            when d = disk ->
              Some { d_t = t; d_disc = disc; d_pos = pos; d_arr = arrival }
          | _ -> None)
        t.t_events
    in
    if disps <> [] then
      check_dispatches
        ~report:(fun d m -> err d "%s" m)
        ~tol disk services clean disps
  done;
  match List.rev !errors with [] -> Ok () | es -> Error es

(* --- derived statistics --- *)

type disk_summary = {
  disk : int;
  busy : float;
  ready : float;
  ready_low : float;
  changing : float;
  spin_down_time : float;
  standby : float;
  spin_up_time : float;
  aborted_time : float;
  services : int;
  modulations : int;
  spin_downs : int;
  spin_ups : int;
  aborted : int;
  retries : int;
  remaps : int;
  redirects : int;
  killed_at : float option;
  missed_preactivations : int;
  early_preactivations : int;
  early_margin : float;
  wait : float;
}

let empty_summary disk =
  {
    disk;
    busy = 0.0;
    ready = 0.0;
    ready_low = 0.0;
    changing = 0.0;
    spin_down_time = 0.0;
    standby = 0.0;
    spin_up_time = 0.0;
    aborted_time = 0.0;
    services = 0;
    modulations = 0;
    spin_downs = 0;
    spin_ups = 0;
    aborted = 0;
    retries = 0;
    remaps = 0;
    redirects = 0;
    killed_at = None;
    missed_preactivations = 0;
    early_preactivations = 0;
    early_margin = 0.0;
    wait = 0.0;
  }

(* Per-disk fold state for run counting and pre-activation analysis. *)
type scan = {
  mutable sum : disk_summary;
  mutable prev : item option;
  mutable rising_until : float option;
      (* completion time of a spin-up run whose wake-up has not been
         claimed by a service or written off yet *)
}

let disk_summaries t =
  let top_guess =
    (* Highest level seen anywhere; only used to split ready_low. *)
    List.fold_left
      (fun acc ev ->
        match ev with
        | Span { state = Ready l; _ } | Service { level = l; _ }
        | Occupy { level = l; _ } ->
            max acc l
        | Span { state = Changing { from_level; to_level }; _ } ->
            max acc (max from_level to_level)
        | _ -> acc)
      0 t.t_events
  in
  let nd = ndisks t in
  let s_end = sim_end t in
  let scans =
    Array.init nd (fun d ->
        { sum = empty_summary d; prev = None; rising_until = None })
  in
  (* Run before accounting for each timed item: detect the end of a
     spin-up run (spans are contiguous, so it ended at this item's t0)
     and write the pending wake-up off as early if the disk heads back
     down without serving anything. *)
  let pre_item sc it t0 =
    (match (sc.prev, it) with
    | Some (I_state Spinning_up), n when n <> I_state Spinning_up ->
        sc.rising_until <- Some t0
    | _ -> ());
    match (sc.rising_until, it) with
    | Some b, I_state Spinning_down ->
        sc.sum <-
          {
            sc.sum with
            early_preactivations = sc.sum.early_preactivations + 1;
            early_margin = sc.sum.early_margin +. Float.max 0.0 (t0 -. b);
          };
        sc.rising_until <- None
    | _ -> ()
  in
  let account sc it t0 t1 =
    let dt = t1 -. t0 in
    let s = sc.sum in
    let new_run state =
      match (sc.prev, state) with
      | Some (I_state p), _ when p = state -> false
      | _ -> true
    in
    (match it with
    | I_state (Ready l) ->
        sc.sum <-
          {
            s with
            ready = s.ready +. dt;
            ready_low = (s.ready_low +. if l < top_guess then dt else 0.0);
          }
    | I_state (Changing _ as st) ->
        sc.sum <-
          {
            s with
            changing = s.changing +. dt;
            modulations = (s.modulations + if new_run st then 1 else 0);
          }
    | I_state Spinning_down ->
        sc.sum <-
          {
            s with
            spin_down_time = s.spin_down_time +. dt;
            spin_downs = (s.spin_downs + if new_run Spinning_down then 1 else 0);
          }
    | I_state Standby -> sc.sum <- { s with standby = s.standby +. dt }
    | I_state Spinning_up ->
        sc.sum <-
          {
            s with
            spin_up_time = s.spin_up_time +. dt;
            spin_ups = (s.spin_ups + if new_run Spinning_up then 1 else 0);
          }
    | I_busy _ -> sc.sum <- { s with busy = s.busy +. dt }
    | I_abort ->
        sc.sum <-
          { s with aborted_time = s.aborted_time +. dt; aborted = s.aborted + 1 });
    sc.prev <- Some it
  in
  List.iter
    (fun ev ->
      match ev with
      | Span { disk; state; t0; t1 } ->
          let sc = scans.(disk) in
          pre_item sc (I_state state) t0;
          account sc (I_state state) t0 t1
      | Occupy { disk; level; t0; t1 } ->
          let sc = scans.(disk) in
          pre_item sc (I_busy level) t0;
          account sc (I_busy level) t0 t1
      | Aborted { disk; t0; t1; _ } ->
          let sc = scans.(disk) in
          pre_item sc I_abort t0;
          account sc I_abort t0 t1
      | Service { disk; level; arrival; t0; t1; _ } ->
          let sc = scans.(disk) in
          pre_item sc (I_busy level) t0;
          let s = sc.sum in
          let waited = t0 -. arrival in
          let missed, early, margin =
            match sc.rising_until with
            | Some b ->
                sc.rising_until <- None;
                if waited > 0.0 then (1, 0, 0.0)
                else if arrival > b then (0, 1, arrival -. b)
                else (0, 0, 0.0)
            | None -> (0, 0, 0.0)
          in
          sc.sum <-
            {
              s with
              services = s.services + 1;
              wait = s.wait +. waited;
              missed_preactivations = s.missed_preactivations + missed;
              early_preactivations = s.early_preactivations + early;
              early_margin = s.early_margin +. margin;
            };
          account sc (I_busy level) t0 t1
      | Mark { disk; t; mark } -> (
          let sc = scans.(disk) in
          let s = sc.sum in
          match mark with
          | Retry _ -> sc.sum <- { s with retries = s.retries + 1 }
          | Remap _ -> sc.sum <- { s with remaps = s.remaps + 1 }
          | Redirect _ -> sc.sum <- { s with redirects = s.redirects + 1 }
          | Killed -> sc.sum <- { s with killed_at = Some t }
          | Directive_spin_down | Directive_spin_up | Directive_set_rpm _
          | Gap_decision _ | Dispatch _ ->
              ())
      | Sim_end _ -> ())
    t.t_events;
  Array.map
    (fun sc ->
      (match sc.rising_until with
      | Some b ->
          sc.sum <-
            {
              sc.sum with
              early_preactivations = sc.sum.early_preactivations + 1;
              early_margin = sc.sum.early_margin +. Float.max 0.0 (s_end -. b);
            }
      | None -> ());
      sc.sum)
    scans

let pre_activation_totals t =
  Array.fold_left
    (fun (m, e) s ->
      (m + s.missed_preactivations, e + s.early_preactivations))
    (0, 0) (disk_summaries t)

(* --- rendering --- *)

let gantt ?(width = 64) t =
  let nd = ndisks t in
  let s_end = sim_end t in
  if nd = 0 || s_end <= 0.0 then ""
  else begin
    let top_guess =
      List.fold_left
        (fun acc ev ->
          match ev with
          | Span { state = Ready l; _ } | Service { level = l; _ }
          | Occupy { level = l; _ } ->
              max acc l
          | _ -> acc)
        0 t.t_events
    in
    (* Category indices: 0 busy, 1 abort, 2 spin-up, 3 spin-down,
       4 changing, 5 low-rpm idle, 6 standby, 7 full-speed idle. *)
    let chars = [| '#'; '!'; '^'; 'v'; '-'; '~'; '.'; '=' |] in
    let weight = Array.init nd (fun _ -> Array.make_matrix width 8 0.0) in
    let bucket_w = s_end /. float_of_int width in
    let spread disk cat t0 t1 =
      if t1 > t0 then begin
        let b0 = max 0 (int_of_float (t0 /. bucket_w)) in
        let b1 = min (width - 1) (int_of_float (t1 /. bucket_w)) in
        for b = b0 to b1 do
          let lo = Float.max t0 (float_of_int b *. bucket_w) in
          let hi = Float.min t1 (float_of_int (b + 1) *. bucket_w) in
          if hi > lo then weight.(disk).(b).(cat) <- weight.(disk).(b).(cat) +. (hi -. lo)
        done
      end
    in
    let killed = Array.make nd None in
    List.iter
      (fun ev ->
        match ev with
        | Span { disk; state; t0; t1 } ->
            let cat =
              match state with
              | Ready l -> if l < top_guess then 5 else 7
              | Changing _ -> 4
              | Spinning_down -> 3
              | Standby -> 6
              | Spinning_up -> 2
            in
            spread disk cat t0 t1
        | Service { disk; t0; t1; _ } | Occupy { disk; t0; t1; _ } ->
            spread disk 0 t0 t1
        | Aborted { disk; t0; t1; _ } -> spread disk 1 t0 t1
        | Mark { disk; t; mark = Killed } -> killed.(disk) <- Some t
        | Mark _ | Sim_end _ -> ())
      t.t_events;
    let buf = Buffer.create ((width + 16) * nd) in
    for d = 0 to nd - 1 do
      Buffer.add_string buf (Printf.sprintf "disk %-2d |" d);
      for b = 0 to width - 1 do
        let best = ref (-1) and best_w = ref 0.0 in
        for c = 0 to 7 do
          if weight.(d).(b).(c) > !best_w then begin
            best := c;
            best_w := weight.(d).(b).(c)
          end
        done;
        let ch =
          if !best >= 0 then chars.(!best)
          else
            match killed.(d) with
            | Some k when float_of_int b *. bucket_w >= k -. (bucket_w /. 2.0) ->
                'X'
            | _ -> ' '
        in
        Buffer.add_char buf ch
      done;
      Buffer.add_string buf "|\n"
    done;
    Buffer.contents buf
  end

let summary ?(specs = Config.default.Config.specs) ?fleet t =
  let buf = Buffer.create 1024 in
  let sums = disk_summaries t in
  let e = reintegrate ~specs ?fleet t in
  let table =
    Dpm_util.Table.create
      ~title:
        (Printf.sprintf "timeline %s/%s"
           (if t.t_program = "" then "?" else t.t_program)
           (if t.t_scheme = "" then "?" else t.t_scheme))
      ~columns:
        [
          ("disk", Dpm_util.Table.Left);
          ("busy(s)", Dpm_util.Table.Right);
          ("idle(s)", Dpm_util.Table.Right);
          ("low-rpm(s)", Dpm_util.Table.Right);
          ("chg(s)", Dpm_util.Table.Right);
          ("down(s)", Dpm_util.Table.Right);
          ("stby(s)", Dpm_util.Table.Right);
          ("up(s)", Dpm_util.Table.Right);
          ("serves", Dpm_util.Table.Right);
          ("mods", Dpm_util.Table.Right);
          ("spdn", Dpm_util.Table.Right);
          ("miss", Dpm_util.Table.Right);
          ("early", Dpm_util.Table.Right);
          ("wait(s)", Dpm_util.Table.Right);
          ("energy(J)", Dpm_util.Table.Right);
        ]
  in
  Array.iter
    (fun s ->
      Dpm_util.Table.add_row table
        [
          (string_of_int s.disk
          ^ match s.killed_at with Some _ -> "*" | None -> "");
          Dpm_util.Table.cell_f s.busy;
          Dpm_util.Table.cell_f s.ready;
          Dpm_util.Table.cell_f s.ready_low;
          Dpm_util.Table.cell_f s.changing;
          Dpm_util.Table.cell_f s.spin_down_time;
          Dpm_util.Table.cell_f s.standby;
          Dpm_util.Table.cell_f s.spin_up_time;
          Dpm_util.Table.cell_int s.services;
          Dpm_util.Table.cell_int s.modulations;
          Dpm_util.Table.cell_int s.spin_downs;
          Dpm_util.Table.cell_int s.missed_preactivations;
          Dpm_util.Table.cell_int s.early_preactivations;
          Dpm_util.Table.cell_f s.wait;
          Dpm_util.Table.cell_f e.per_disk.(s.disk);
        ])
    sums;
  Buffer.add_string buf (Dpm_util.Table.render table);
  let lanes = gantt t in
  if lanes <> "" then begin
    Buffer.add_string buf
      (Printf.sprintf
         "gantt over [0, %.2f s] (#busy =idle ~low-rpm -chg vdown .stby ^up \
          !abort Xdead)\n"
         (sim_end t));
    Buffer.add_string buf lanes
  end;
  Buffer.add_string buf
    (Printf.sprintf "reintegrated energy: %.2f J over %d event(s)\n" e.total
       (List.length t.t_events));
  (match check ~specs ?fleet t with
  | Ok () -> Buffer.add_string buf "invariants: ok\n"
  | Error es ->
      Buffer.add_string buf
        (Printf.sprintf "invariants: %d violation(s)\n" (List.length es));
      List.iter
        (fun m -> Buffer.add_string buf (Printf.sprintf "  %s\n" m))
        es);
  Buffer.contents buf

(* --- JSONL / CSV export --- *)

let fstr x = Printf.sprintf "%.17g" x

let state_fields = function
  | Ready l -> Printf.sprintf {|"state":"ready","level":%d|} l
  | Changing { from_level; to_level } ->
      Printf.sprintf {|"state":"changing","from":%d,"to":%d|} from_level
        to_level
  | Spinning_down -> {|"state":"spin_down"|}
  | Standby -> {|"state":"standby"|}
  | Spinning_up -> {|"state":"spin_up"|}

let mark_fields = function
  | Retry k -> Printf.sprintf {|"mark":"retry","arg":%d|} k
  | Remap b -> Printf.sprintf {|"mark":"remap","arg":%d|} b
  | Redirect d -> Printf.sprintf {|"mark":"redirect","arg":%d|} d
  | Killed -> {|"mark":"killed"|}
  | Directive_spin_down -> {|"mark":"spin_down"|}
  | Directive_spin_up -> {|"mark":"spin_up"|}
  | Directive_set_rpm l -> Printf.sprintf {|"mark":"set_rpm","arg":%d|} l
  | Gap_decision { predicted; level; spin_down } ->
      Printf.sprintf {|"mark":"gap","predicted":%s,"level":%d,"spin_down":%b|}
        (fstr predicted) level spin_down
  | Dispatch { disc; pos; arrival } ->
      Printf.sprintf {|"mark":"dispatch","sched":"%s","arg":%d,"arrival":%s|}
        (Config.sched_name disc) pos (fstr arrival)

let event_json = function
  | Span { disk; state; t0; t1 } ->
      Printf.sprintf {|{"ev":"span","disk":%d,%s,"t0":%s,"t1":%s}|} disk
        (state_fields state) (fstr t0) (fstr t1)
  | Service { disk; level; arrival; t0; t1; bytes } ->
      Printf.sprintf
        {|{"ev":"serve","disk":%d,"level":%d,"arrival":%s,"t0":%s,"t1":%s,"bytes":%d}|}
        disk level (fstr arrival) (fstr t0) (fstr t1) bytes
  | Occupy { disk; level; t0; t1 } ->
      Printf.sprintf {|{"ev":"occupy","disk":%d,"level":%d,"t0":%s,"t1":%s}|}
        disk level (fstr t0) (fstr t1)
  | Aborted { disk; t0; t1; fraction } ->
      Printf.sprintf
        {|{"ev":"abort","disk":%d,"t0":%s,"t1":%s,"fraction":%s}|} disk
        (fstr t0) (fstr t1) (fstr fraction)
  | Mark { disk; t; mark } ->
      Printf.sprintf {|{"ev":"mark","disk":%d,"t":%s,%s}|} disk (fstr t)
        (mark_fields mark)
  | Sim_end t -> Printf.sprintf {|{"ev":"end","t":%s}|} (fstr t)

let write_jsonl t oc =
  (* The fleet rides in the meta line only when heterogeneous, so
     legacy logs round-trip byte-identically. *)
  let fleet_field =
    if t.t_fleet = [] then ""
    else Printf.sprintf {|,"fleet":"%s"|} (String.concat ";" t.t_fleet)
  in
  Printf.fprintf oc
    {|{"ev":"meta","scheme":"%s","program":"%s","analytic":%b%s}|} t.t_scheme
    t.t_program t.t_analytic fleet_field;
  output_char oc '\n';
  List.iter
    (fun ev ->
      output_string oc (event_json ev);
      output_char oc '\n')
    t.t_events

let write_csv t oc =
  output_string oc
    "ev,disk,state,level,from,to,arrival,t0,t1,bytes,fraction,mark,arg,predicted,spin_down,t\n";
  let row ~ev ?(disk = "") ?(state = "") ?(level = "") ?(from = "") ?(to_ = "")
      ?(arrival = "") ?(t0 = "") ?(t1 = "") ?(bytes = "") ?(fraction = "")
      ?(mark = "") ?(arg = "") ?(predicted = "") ?(spin_down = "") ?(t = "") ()
      =
    Printf.fprintf oc "%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n" ev
      disk state level from to_ arrival t0 t1 bytes fraction mark arg predicted
      spin_down t
  in
  List.iter
    (fun ev ->
      match ev with
      | Span { disk; state; t0; t1 } ->
          let st, level, from, to_ =
            match state with
            | Ready l -> ("ready", string_of_int l, "", "")
            | Changing { from_level; to_level } ->
                ("changing", "", string_of_int from_level,
                 string_of_int to_level)
            | Spinning_down -> ("spin_down", "", "", "")
            | Standby -> ("standby", "", "", "")
            | Spinning_up -> ("spin_up", "", "", "")
          in
          row ~ev:"span" ~disk:(string_of_int disk) ~state:st ~level ~from ~to_
            ~t0:(fstr t0) ~t1:(fstr t1) ()
      | Service { disk; level; arrival; t0; t1; bytes } ->
          row ~ev:"serve" ~disk:(string_of_int disk)
            ~level:(string_of_int level) ~arrival:(fstr arrival) ~t0:(fstr t0)
            ~t1:(fstr t1) ~bytes:(string_of_int bytes) ()
      | Occupy { disk; level; t0; t1 } ->
          row ~ev:"occupy" ~disk:(string_of_int disk)
            ~level:(string_of_int level) ~t0:(fstr t0) ~t1:(fstr t1) ()
      | Aborted { disk; t0; t1; fraction } ->
          row ~ev:"abort" ~disk:(string_of_int disk) ~t0:(fstr t0)
            ~t1:(fstr t1) ~fraction:(fstr fraction) ()
      | Mark { disk; t; mark } -> (
          let base = row ~ev:"mark" ~disk:(string_of_int disk) ~t:(fstr t) in
          match mark with
          | Retry k -> base ~mark:"retry" ~arg:(string_of_int k) ()
          | Remap b -> base ~mark:"remap" ~arg:(string_of_int b) ()
          | Redirect d -> base ~mark:"redirect" ~arg:(string_of_int d) ()
          | Killed -> base ~mark:"killed" ()
          | Directive_spin_down -> base ~mark:"spin_down" ()
          | Directive_spin_up -> base ~mark:"spin_up" ()
          | Directive_set_rpm l -> base ~mark:"set_rpm" ~arg:(string_of_int l) ()
          | Gap_decision { predicted; level; spin_down } ->
              base ~mark:"gap" ~predicted:(fstr predicted)
                ~level:(string_of_int level)
                ~spin_down:(string_of_bool spin_down) ()
          | Dispatch { disc; pos; arrival } ->
              (* The discipline rides in the state column — the CSV
                 header is fixed. *)
              base ~mark:"dispatch" ~state:(Config.sched_name disc)
                ~arg:(string_of_int pos) ~arrival:(fstr arrival) ())
      | Sim_end t -> row ~ev:"end" ~t:(fstr t) ())
    t.t_events

(* --- JSONL parsing (only what write_jsonl emits: one flat object per
   line, string/number/bool values, no escapes) --- *)

let parse_flat line =
  let n = String.length line in
  let fields = ref [] in
  let i = ref 0 in
  let fail m = failwith (Printf.sprintf "Timeline.read_jsonl: %s in %S" m line) in
  let skip_ws () = while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done in
  skip_ws ();
  if !i >= n || line.[!i] <> '{' then fail "expected '{'";
  incr i;
  let read_string () =
    if !i >= n || line.[!i] <> '"' then fail "expected '\"'";
    incr i;
    let start = !i in
    while !i < n && line.[!i] <> '"' do incr i done;
    if !i >= n then fail "unterminated string";
    let s = String.sub line start (!i - start) in
    incr i;
    s
  in
  let rec entries () =
    skip_ws ();
    if !i < n && line.[!i] = '}' then ()
    else begin
      let key = read_string () in
      skip_ws ();
      if !i >= n || line.[!i] <> ':' then fail "expected ':'";
      incr i;
      skip_ws ();
      let value =
        if !i < n && line.[!i] = '"' then read_string ()
        else begin
          let start = !i in
          while !i < n && line.[!i] <> ',' && line.[!i] <> '}' do incr i done;
          String.trim (String.sub line start (!i - start))
        end
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      if !i < n && line.[!i] = ',' then begin
        incr i;
        entries ()
      end
    end
  in
  entries ();
  List.rev !fields

let get fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> failwith ("Timeline.read_jsonl: missing field " ^ key)

let geti fields key = int_of_string (get fields key)
let getf fields key = float_of_string (get fields key)

let event_of_fields fields =
  match get fields "ev" with
  | "span" ->
      let state =
        match get fields "state" with
        | "ready" -> Ready (geti fields "level")
        | "changing" ->
            Changing
              { from_level = geti fields "from"; to_level = geti fields "to" }
        | "spin_down" -> Spinning_down
        | "standby" -> Standby
        | "spin_up" -> Spinning_up
        | s -> failwith ("Timeline.read_jsonl: unknown state " ^ s)
      in
      Span
        {
          disk = geti fields "disk";
          state;
          t0 = getf fields "t0";
          t1 = getf fields "t1";
        }
  | "serve" ->
      Service
        {
          disk = geti fields "disk";
          level = geti fields "level";
          arrival = getf fields "arrival";
          t0 = getf fields "t0";
          t1 = getf fields "t1";
          bytes = geti fields "bytes";
        }
  | "occupy" ->
      Occupy
        {
          disk = geti fields "disk";
          level = geti fields "level";
          t0 = getf fields "t0";
          t1 = getf fields "t1";
        }
  | "abort" ->
      Aborted
        {
          disk = geti fields "disk";
          t0 = getf fields "t0";
          t1 = getf fields "t1";
          fraction = getf fields "fraction";
        }
  | "mark" ->
      let mark =
        match get fields "mark" with
        | "retry" -> Retry (geti fields "arg")
        | "remap" -> Remap (geti fields "arg")
        | "redirect" -> Redirect (geti fields "arg")
        | "killed" -> Killed
        | "spin_down" -> Directive_spin_down
        | "spin_up" -> Directive_spin_up
        | "set_rpm" -> Directive_set_rpm (geti fields "arg")
        | "gap" ->
            Gap_decision
              {
                predicted = getf fields "predicted";
                level = geti fields "level";
                spin_down = bool_of_string (get fields "spin_down");
              }
        | "dispatch" ->
            let name = get fields "sched" in
            let disc =
              match Config.sched_of_name_opt name with
              | Some d -> d
              | None ->
                  failwith ("Timeline.read_jsonl: unknown scheduler " ^ name)
            in
            Dispatch
              {
                disc;
                pos = geti fields "arg";
                arrival = getf fields "arrival";
              }
        | m -> failwith ("Timeline.read_jsonl: unknown mark " ^ m)
      in
      Mark { disk = geti fields "disk"; t = getf fields "t"; mark }
  | "end" -> Sim_end (getf fields "t")
  | ev -> failwith ("Timeline.read_jsonl: unknown event " ^ ev)

let read_jsonl ic =
  let sections = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (scheme, program, analytic, fleet, rev) ->
        sections :=
          {
            t_scheme = scheme;
            t_program = program;
            t_analytic = analytic;
            t_fleet = fleet;
            t_events = List.rev rev;
          }
          :: !sections;
        current := None
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let fields = parse_flat line in
         match get fields "ev" with
         | "meta" ->
             flush ();
             let fleet =
               match List.assoc_opt "fleet" fields with
               | None | Some "" -> []
               | Some names -> String.split_on_char ';' names
             in
             current :=
               Some
                 ( get fields "scheme",
                   get fields "program",
                   bool_of_string (get fields "analytic"),
                   fleet,
                   [] )
         | _ ->
             let ev = event_of_fields fields in
             (match !current with
             | Some (s, p, a, fl, rev) ->
                 current := Some (s, p, a, fl, ev :: rev)
             | None -> current := Some ("", "", false, [], [ ev ]))
       end
     done
   with End_of_file -> ());
  flush ();
  List.rev !sections
