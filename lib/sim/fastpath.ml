(* Specialized zero-allocation replay core.

   Mirrors [Engine.replay] (the reference body) with three mechanical
   transformations, none of which changes a single float operation or
   its order:

   - events are read by index out of structure-of-arrays chunks
     ([Trace.Stream.next_soa]) instead of destructuring
     [Request.event] records;
   - the policy's hook sites are specialized out of the inner loop:
     one monomorphic loop per [Policy.kind], selected once per run, so
     the common kinds ([Passive], [Directive_only], [Timer]) make no
     closure calls per event;
   - the application clock is threaded as an unboxed loop argument
     (the reference's [float ref] boxes a float per assignment), the
     per-request service arithmetic for the dominant disk state
     ([Ready], not failed, no recorder) is inlined against the
     [Disk_state] record using the per-level tables precomputed at
     [Disk_state.create], and telemetry/fault [option] checks are
     hoisted so the [None] cases make no calls at all.

   The reference body stays authoritative: every behavioural claim here
   is pinned by the differential suite (test/test_fastpath.ml), which
   asserts byte-identical results, timelines, fault counters and
   histograms across both cores. *)

module Request = Dpm_trace.Request
module Stream = Dpm_trace.Trace.Stream
module Chunk = Stream.Chunk
module Service = Dpm_disk.Service
module A1 = Bigarray.Array1

let supported ~config (policy : Policy.t) =
  (* Deferred queue disciplines reorder dispatches; only the eager FCFS
     order has a specialized loop, everything else takes the reference
     body in {!Sched}. *)
  config.Config.sched = Config.Fcfs
  &&
  match policy.Policy.kind with
  | Policy.Passive | Policy.Directive_only | Policy.Timer _ -> true
  (* A hooked policy that also accepted directives would need a fifth
     loop; no current policy is shaped that way, so it falls back to
     the reference body instead. *)
  | Policy.Hooked -> not policy.Policy.accepts_directives

(* [Disk_state.serve] with the overwhelmingly common case — [Ready],
   alive, no timeline recorder — inlined as straight-line arithmetic.
   Operation-for-operation identical to the general path
   ([max]/[advance]/[ready_at]/[serve]): the idle charge and residency
   are guarded like [charge]/[note_residency], the active charge like
   [charge], and the service residency is unguarded like [serve]'s.
   Every other case (transitions, standby, failed, recording) takes the
   general function.

   The request time crosses this call through [fbuf] — a one-element
   float-array mailbox ([fbuf.(0)] is the issue time on entry, the
   completion time on return) — because ocamlopt's uniform calling
   convention would box a float argument and a float return at any
   non-inlined call site, and this core's zero-allocation claim must
   not depend on the inliner's mood.  Float-array loads and stores
   compile to raw moves. *)
let serve_fast (st : Disk_state.t) ~fbuf ~bytes =
  match st.phase with
  | Disk_state.Ready lvl
    when (not st.failed)
         && (match st.recorder with None -> true | Some _ -> false) ->
      let hot = st.Disk_state.hot in
      let now = Array.unsafe_get fbuf 0 in
      let lu = Array.unsafe_get hot Disk_state.ix_last_update in
      let now = if now >= lu then now else lu in
      if now > lu then begin
        let dt = now -. lu in
        Array.unsafe_set hot Disk_state.ix_total_energy
          (Array.unsafe_get hot Disk_state.ix_total_energy
          +. (Array.unsafe_get st.idle_power lvl *. dt));
        Array.unsafe_set st.residency lvl
          (Array.unsafe_get st.residency lvl +. dt)
      end;
      let fbytes = float_of_int bytes in
      let flvl = float_of_int lvl in
      let quot =
        if
          fbytes = Array.unsafe_get hot Disk_state.ix_svc_bytes
          && flvl = Array.unsafe_get hot Disk_state.ix_svc_level
        then Array.unsafe_get hot Disk_state.ix_svc_quot
        else begin
          let q = fbytes /. Array.unsafe_get st.svc_denom lvl in
          Array.unsafe_set hot Disk_state.ix_svc_bytes fbytes;
          Array.unsafe_set hot Disk_state.ix_svc_level flvl;
          Array.unsafe_set hot Disk_state.ix_svc_quot q;
          q
        end
      in
      let service = Array.unsafe_get st.svc_base lvl +. quot in
      let completion = now +. service in
      if service > 0.0 then
        Array.unsafe_set hot Disk_state.ix_total_energy
          (Array.unsafe_get hot Disk_state.ix_total_energy
          +. (Array.unsafe_get st.active_power lvl *. service));
      Array.unsafe_set st.residency lvl
        (Array.unsafe_get st.residency lvl +. service);
      Array.unsafe_set hot Disk_state.ix_last_update completion;
      if st.retain_busy then st.busy_rev <- (now, completion) :: st.busy_rev;
      st.served <- st.served + 1;
      Array.unsafe_set hot Disk_state.ix_idle_start completion;
      Array.unsafe_set fbuf 0 completion
  | _ ->
      Array.unsafe_set fbuf 0
        (Disk_state.serve st ~now:(Array.unsafe_get fbuf 0) ~bytes)

let replay ~config ~mode ~fault ~timeline ~obs (policy : Policy.t)
    (stream : Stream.t) =
  if not (supported ~config policy) then
    invalid_arg "Fastpath.replay: unsupported policy shape";
  let ndisks = Stream.ndisks stream in
  (* Per-disk models (round-robin fleet, or the homogeneous specs): the
     specialized loops index every model-derived constant by disk, so a
     homogeneous fleet reads the same values the scalar constants held
     and stays bit-identical. *)
  let models = Array.init ndisks (fun d -> Config.model config ~disk:d) in
  let tops = Array.map Dpm_disk.Rpm.max_level models in
  let disks =
    Array.init ndisks (fun id ->
        Disk_state.create ?recorder:timeline
          ~retain_busy:config.Config.retain_busy models.(id) ~id)
  in
  let gap_choices = ref [] in
  let backlog = Array.make ndisks 0.0 in
  let depth = max 1 config.Config.queue_depth in
  let recent = Array.init ndisks (fun _ -> Array.make depth 0.0) in
  let recent_pos = Array.make ndisks 0 in
  (* Flat cell (not a [ref]): float-array stores stay unboxed. *)
  let makespan = [| 0.0 |] in
  let open_mode = match mode with `Open -> true | `Closed -> false in
  let pm_overhead = config.Config.pm_call_overhead in
  (* Full-speed service-time constants, per disk:
     [nom_base.(d) +. bytes /. nom_denom.(d)] is float-identical to
     [Service.request_time models.(d) ~level:tops.(d)]. *)
  let nom_base =
    Array.init ndisks (fun d ->
        Service.seek_time models.(d)
        +. Service.rotation_time models.(d) ~level:tops.(d))
  in
  let nom_denom =
    Array.init ndisks (fun d ->
        Service.transfer_denom models.(d) ~level:tops.(d))
  in
  let kill d at = Disk_state.fail disks.(d) ~at in
  (* Directive application (Directive_only loop), cold relative to IOs:
     mirrors [Sched]'s apply_directive, including the per-disk ladder
     clamp. *)
  let pm_apply tag d lvl clock =
    let clock = clock +. pm_overhead in
    if tag = Chunk.tag_spin_down then begin
      Disk_state.record disks.(d) ~at:clock Timeline.Directive_spin_down;
      Disk_state.spin_down disks.(d) ~now:clock
    end
    else if tag = Chunk.tag_spin_up then begin
      Disk_state.record disks.(d) ~at:clock Timeline.Directive_spin_up;
      match fault with
      | None -> Disk_state.spin_up disks.(d) ~now:clock
      | Some fs -> Fault.spin_up fs disks.(d) ~now:clock
    end
    else begin
      let top = Array.unsafe_get tops d in
      let lvl = if lvl > top then top else lvl in
      if lvl < top then gap_choices := (d, clock, lvl) :: !gap_choices;
      Disk_state.record disks.(d) ~at:clock (Timeline.Directive_set_rpm lvl);
      Disk_state.set_level disks.(d) ~now:clock lvl
    end;
    clock
  in

  (* --- Monomorphic per-kind loops ---

     Each loop is the reference per-event body with the policy's hook
     sites resolved at compile time.  The application clock lives in
     [clockc] — a one-element float array, so updates are raw unboxed
     stores (a [float ref] would allocate a box per assignment, and a
     float loop argument would be boxed at every non-inlined call) —
     and service times cross [serve_fast] through the [fbuf] mailbox.
     The bodies are intentionally textually parallel; any edit here
     must be mirrored across all four and checked against
     [Engine.replay]. *)
  let run_passive () =
    let clockc = [| 0.0 |] and fbuf = [| 0.0 |] in
    (* Per-disk one-entry cache of the full-speed transfer quotient
       [bytes /. nom_denom.(d)] (see Disk_state.ix_svc_bytes): a hit is
       bit-identical to dividing and skips the second serial divide
       per event. *)
    let nomk = Array.make ndisks (-1.0) and nomv = Array.make ndisks 0.0 in
    let running = ref true in
    while !running do
      match Stream.next_soa stream with
      | None -> running := false
      | Some c ->
          let len = c.Chunk.len in
          let thinkc = c.Chunk.think and tagc = c.Chunk.tag in
          let diskc = c.Chunk.disk and bytesc = c.Chunk.bytes in
          let blockc = c.Chunk.block in
          for i = 0 to len - 1 do
            let clock = Array.unsafe_get clockc 0 +. A1.unsafe_get thinkc i in
            (match fault with
            | None -> ()
            | Some fs -> Fault.sweep fs ~now:clock ~kill);
            let tag = A1.unsafe_get tagc i in
            if tag > Chunk.tag_write then Array.unsafe_set clockc 0 clock
            else begin
              let disk0 = A1.unsafe_get diskc i in
              let d =
                match fault with
                | None -> disk0
                | Some fs -> Fault.serving_disk fs ~disk:disk0 ~now:clock
              in
              if d <> disk0 then
                Disk_state.record
                  (Array.unsafe_get disks d)
                  ~at:clock (Timeline.Redirect disk0);
              let st = Array.unsafe_get disks d in
              let ring = Array.unsafe_get recent d in
              let pos = Array.unsafe_get recent_pos d in
              let oldest = Array.unsafe_get ring pos in
              let clock = if oldest > clock then oldest else clock in
              let arrival = clock in
              (match obs with
              | None -> ()
              | Some o -> Observe.arrival o ~ring ~arrival);
              let b = Array.unsafe_get backlog d in
              let issue = if arrival >= b then arrival else b in
              let before =
                match obs with
                | None -> 0
                | Some _ -> (
                    match fault with
                    | Some fs -> Fault.retries_so_far fs
                    | None -> 0)
              in
              let bytes = A1.unsafe_get bytesc i in
              (match fault with
              | None ->
                  Array.unsafe_set fbuf 0 issue;
                  serve_fast st ~fbuf ~bytes
              | Some fs ->
                  Array.unsafe_set fbuf 0
                    (Fault.serve fs st ~now:issue ~bytes
                       ~block:(A1.unsafe_get blockc i)));
              let completion = Array.unsafe_get fbuf 0 in
              Array.unsafe_set backlog d completion;
              Array.unsafe_set ring pos completion;
              Array.unsafe_set recent_pos d
                (let p = pos + 1 in
                 if p = depth then 0 else p);
              if completion > Array.unsafe_get makespan 0 then
                Array.unsafe_set makespan 0 completion;
              (match obs with
              | None -> ()
              | Some o ->
                  let response = completion -. arrival in
                  Observe.service o ~fault ~retries_before:before ~response);
              Array.unsafe_set clockc 0
                (if open_mode then
                   let fbytes = float_of_int bytes in
                   let quot =
                     if fbytes = Array.unsafe_get nomk d then
                       Array.unsafe_get nomv d
                     else begin
                       let q = fbytes /. Array.unsafe_get nom_denom d in
                       Array.unsafe_set nomk d fbytes;
                       Array.unsafe_set nomv d q;
                       q
                     end
                   in
                   arrival +. (Array.unsafe_get nom_base d +. quot)
                 else completion)
            end
          done
    done;
    Array.unsafe_get clockc 0
  in

  let run_directive () =
    let clockc = [| 0.0 |] and fbuf = [| 0.0 |] in
    (* Per-disk one-entry cache of the full-speed transfer quotient
       [bytes /. nom_denom.(d)] (see Disk_state.ix_svc_bytes): a hit is
       bit-identical to dividing and skips the second serial divide
       per event. *)
    let nomk = Array.make ndisks (-1.0) and nomv = Array.make ndisks 0.0 in
    let running = ref true in
    while !running do
      match Stream.next_soa stream with
      | None -> running := false
      | Some c ->
          let len = c.Chunk.len in
          let thinkc = c.Chunk.think and tagc = c.Chunk.tag in
          let diskc = c.Chunk.disk and bytesc = c.Chunk.bytes in
          let blockc = c.Chunk.block in
          for i = 0 to len - 1 do
            let clock = Array.unsafe_get clockc 0 +. A1.unsafe_get thinkc i in
            (match fault with
            | None -> ()
            | Some fs -> Fault.sweep fs ~now:clock ~kill);
            let tag = A1.unsafe_get tagc i in
            if tag > Chunk.tag_write then
              Array.unsafe_set clockc 0
                (pm_apply tag
                   (A1.unsafe_get diskc i)
                   (A1.unsafe_get blockc i)
                   clock)
            else begin
              let disk0 = A1.unsafe_get diskc i in
              let d =
                match fault with
                | None -> disk0
                | Some fs -> Fault.serving_disk fs ~disk:disk0 ~now:clock
              in
              if d <> disk0 then
                Disk_state.record
                  (Array.unsafe_get disks d)
                  ~at:clock (Timeline.Redirect disk0);
              let st = Array.unsafe_get disks d in
              let ring = Array.unsafe_get recent d in
              let pos = Array.unsafe_get recent_pos d in
              let oldest = Array.unsafe_get ring pos in
              let clock = if oldest > clock then oldest else clock in
              let arrival = clock in
              (match obs with
              | None -> ()
              | Some o -> Observe.arrival o ~ring ~arrival);
              let b = Array.unsafe_get backlog d in
              let issue = if arrival >= b then arrival else b in
              let before =
                match obs with
                | None -> 0
                | Some _ -> (
                    match fault with
                    | Some fs -> Fault.retries_so_far fs
                    | None -> 0)
              in
              let bytes = A1.unsafe_get bytesc i in
              (match fault with
              | None ->
                  Array.unsafe_set fbuf 0 issue;
                  serve_fast st ~fbuf ~bytes
              | Some fs ->
                  Array.unsafe_set fbuf 0
                    (Fault.serve fs st ~now:issue ~bytes
                       ~block:(A1.unsafe_get blockc i)));
              let completion = Array.unsafe_get fbuf 0 in
              Array.unsafe_set backlog d completion;
              Array.unsafe_set ring pos completion;
              Array.unsafe_set recent_pos d
                (let p = pos + 1 in
                 if p = depth then 0 else p);
              if completion > Array.unsafe_get makespan 0 then
                Array.unsafe_set makespan 0 completion;
              (match obs with
              | None -> ()
              | Some o ->
                  let response = completion -. arrival in
                  Observe.service o ~fault ~retries_before:before ~response);
              Array.unsafe_set clockc 0
                (if open_mode then
                   let fbytes = float_of_int bytes in
                   let quot =
                     if fbytes = Array.unsafe_get nomk d then
                       Array.unsafe_get nomv d
                     else begin
                       let q = fbytes /. Array.unsafe_get nom_denom d in
                       Array.unsafe_set nomk d fbytes;
                       Array.unsafe_set nomv d q;
                       q
                     end
                   in
                   arrival +. (Array.unsafe_get nom_base d +. quot)
                 else completion)
            end
          done
    done;
    Array.unsafe_get clockc 0
  in

  let run_timer threshold =
    let clockc = [| 0.0 |] and fbuf = [| 0.0 |] in
    (* Per-disk one-entry cache of the full-speed transfer quotient
       [bytes /. nom_denom.(d)] (see Disk_state.ix_svc_bytes): a hit is
       bit-identical to dividing and skips the second serial divide
       per event. *)
    let nomk = Array.make ndisks (-1.0) and nomv = Array.make ndisks 0.0 in
    let running = ref true in
    while !running do
      match Stream.next_soa stream with
      | None -> running := false
      | Some c ->
          let len = c.Chunk.len in
          let thinkc = c.Chunk.think and tagc = c.Chunk.tag in
          let diskc = c.Chunk.disk and bytesc = c.Chunk.bytes in
          let blockc = c.Chunk.block in
          for i = 0 to len - 1 do
            let clock = Array.unsafe_get clockc 0 +. A1.unsafe_get thinkc i in
            (match fault with
            | None -> ()
            | Some fs -> Fault.sweep fs ~now:clock ~kill);
            let tag = A1.unsafe_get tagc i in
            if tag > Chunk.tag_write then Array.unsafe_set clockc 0 clock
            else begin
              let disk0 = A1.unsafe_get diskc i in
              let d =
                match fault with
                | None -> disk0
                | Some fs -> Fault.serving_disk fs ~disk:disk0 ~now:clock
              in
              if d <> disk0 then
                Disk_state.record
                  (Array.unsafe_get disks d)
                  ~at:clock (Timeline.Redirect disk0);
              let st = Array.unsafe_get disks d in
              let ring = Array.unsafe_get recent d in
              let pos = Array.unsafe_get recent_pos d in
              let oldest = Array.unsafe_get ring pos in
              let clock = if oldest > clock then oldest else clock in
              let arrival = clock in
              (match obs with
              | None -> ()
              | Some o -> Observe.arrival o ~ring ~arrival);
              let b = Array.unsafe_get backlog d in
              let issue = if arrival >= b then arrival else b in
              (* [Policy.tpm]'s catch_up, inlined: fixed-threshold
                 spin-down fired retroactively at its expiry. *)
              (match st.Disk_state.phase with
              | Disk_state.Ready _ ->
                  let fire_at =
                    Array.unsafe_get st.Disk_state.hot
                      Disk_state.ix_idle_start
                    +. threshold
                  in
                  if issue >= fire_at then
                    Disk_state.spin_down st ~now:fire_at
              | Disk_state.Changing _ | Disk_state.Spinning_down _
              | Disk_state.Standby | Disk_state.Spinning_up _ ->
                  ());
              let before =
                match obs with
                | None -> 0
                | Some _ -> (
                    match fault with
                    | Some fs -> Fault.retries_so_far fs
                    | None -> 0)
              in
              let bytes = A1.unsafe_get bytesc i in
              (match fault with
              | None ->
                  Array.unsafe_set fbuf 0 issue;
                  serve_fast st ~fbuf ~bytes
              | Some fs ->
                  Array.unsafe_set fbuf 0
                    (Fault.serve fs st ~now:issue ~bytes
                       ~block:(A1.unsafe_get blockc i)));
              let completion = Array.unsafe_get fbuf 0 in
              Array.unsafe_set backlog d completion;
              Array.unsafe_set ring pos completion;
              Array.unsafe_set recent_pos d
                (let p = pos + 1 in
                 if p = depth then 0 else p);
              if completion > Array.unsafe_get makespan 0 then
                Array.unsafe_set makespan 0 completion;
              (match obs with
              | None -> ()
              | Some o ->
                  let response = completion -. arrival in
                  Observe.service o ~fault ~retries_before:before ~response);
              Array.unsafe_set clockc 0
                (if open_mode then
                   let fbytes = float_of_int bytes in
                   let quot =
                     if fbytes = Array.unsafe_get nomk d then
                       Array.unsafe_get nomv d
                     else begin
                       let q = fbytes /. Array.unsafe_get nom_denom d in
                       Array.unsafe_set nomk d fbytes;
                       Array.unsafe_set nomv d q;
                       q
                     end
                   in
                   arrival +. (Array.unsafe_get nom_base d +. quot)
                 else completion)
            end
          done
    done;
    Array.unsafe_get clockc 0
  in

  let run_hooked () =
    let catch_up = policy.Policy.catch_up in
    let on_complete = policy.Policy.on_complete in
    let clockc = [| 0.0 |] and fbuf = [| 0.0 |] in
    (* Per-disk one-entry cache of the full-speed transfer quotient
       [bytes /. nom_denom.(d)] (see Disk_state.ix_svc_bytes): a hit is
       bit-identical to dividing and skips the second serial divide
       per event. *)
    let nomk = Array.make ndisks (-1.0) and nomv = Array.make ndisks 0.0 in
    let running = ref true in
    while !running do
      match Stream.next_soa stream with
      | None -> running := false
      | Some c ->
          let len = c.Chunk.len in
          let thinkc = c.Chunk.think and tagc = c.Chunk.tag in
          let diskc = c.Chunk.disk and bytesc = c.Chunk.bytes in
          let blockc = c.Chunk.block in
          for i = 0 to len - 1 do
            let clock = Array.unsafe_get clockc 0 +. A1.unsafe_get thinkc i in
            (match fault with
            | None -> ()
            | Some fs -> Fault.sweep fs ~now:clock ~kill);
            let tag = A1.unsafe_get tagc i in
            if tag > Chunk.tag_write then Array.unsafe_set clockc 0 clock
            else begin
              let disk0 = A1.unsafe_get diskc i in
              let d =
                match fault with
                | None -> disk0
                | Some fs -> Fault.serving_disk fs ~disk:disk0 ~now:clock
              in
              if d <> disk0 then
                Disk_state.record
                  (Array.unsafe_get disks d)
                  ~at:clock (Timeline.Redirect disk0);
              let st = Array.unsafe_get disks d in
              let ring = Array.unsafe_get recent d in
              let pos = Array.unsafe_get recent_pos d in
              let oldest = Array.unsafe_get ring pos in
              let clock = if oldest > clock then oldest else clock in
              let arrival = clock in
              (match obs with
              | None -> ()
              | Some o -> Observe.arrival o ~ring ~arrival);
              let b = Array.unsafe_get backlog d in
              let issue = if arrival >= b then arrival else b in
              catch_up st ~now:issue;
              let before =
                match obs with
                | None -> 0
                | Some _ -> (
                    match fault with
                    | Some fs -> Fault.retries_so_far fs
                    | None -> 0)
              in
              let bytes = A1.unsafe_get bytesc i in
              (match fault with
              | None ->
                  Array.unsafe_set fbuf 0 issue;
                  serve_fast st ~fbuf ~bytes
              | Some fs ->
                  Array.unsafe_set fbuf 0
                    (Fault.serve fs st ~now:issue ~bytes
                       ~block:(A1.unsafe_get blockc i)));
              let completion = Array.unsafe_get fbuf 0 in
              Array.unsafe_set backlog d completion;
              Array.unsafe_set ring pos completion;
              Array.unsafe_set recent_pos d
                (let p = pos + 1 in
                 if p = depth then 0 else p);
              if completion > Array.unsafe_get makespan 0 then
                Array.unsafe_set makespan 0 completion;
              let response = completion -. arrival in
              (match obs with
              | None -> ()
              | Some o ->
                  Observe.service o ~fault ~retries_before:before ~response);
              let fbytes = float_of_int bytes in
              let quot =
                if fbytes = Array.unsafe_get nomk d then
                  Array.unsafe_get nomv d
                else begin
                  let q = fbytes /. Array.unsafe_get nom_denom d in
                  Array.unsafe_set nomk d fbytes;
                  Array.unsafe_set nomv d q;
                  q
                end
              in
              let nominal = Array.unsafe_get nom_base d +. quot in
              on_complete st ~now:completion ~response ~nominal;
              Array.unsafe_set clockc 0
                (if open_mode then arrival +. nominal else completion)
            end
          done
    done;
    Array.unsafe_get clockc 0
  in

  let clock =
    match policy.Policy.kind with
    | Policy.Passive -> run_passive ()
    | Policy.Directive_only -> run_directive ()
    | Policy.Timer threshold -> run_timer threshold
    | Policy.Hooked -> run_hooked ()
  in
  (* Cold tail: identical to the reference result assembly. *)
  let clock = clock +. Stream.tail_think stream in
  let ms = Array.unsafe_get makespan 0 in
  let exec_time = if clock >= ms then clock else ms in
  (match fault with
  | None -> ()
  | Some fs -> Fault.sweep fs ~now:exec_time ~kill);
  Array.iter
    (fun st ->
      policy.Policy.catch_up st ~now:exec_time;
      Disk_state.finalize st ~at:exec_time)
    disks;
  (match timeline with
  | None -> ()
  | Some sink ->
      Timeline.set_label sink ~scheme:policy.Policy.name
        ~program:(Stream.program stream);
      if Array.length config.Config.fleet > 0 then
        Timeline.set_fleet sink
          (List.map Dpm_disk.Specs.name_of
             (Array.to_list config.Config.fleet));
      Timeline.emit sink (Timeline.Sim_end exec_time));
  let disk_stats =
    Array.map
      (fun st ->
        {
          Result.energy = Disk_state.energy st;
          busy = Disk_state.busy_intervals st;
          requests = Disk_state.requests_served st;
          transitions = Disk_state.transition_count st;
          spin_downs = Disk_state.spin_down_count st;
          level_residency = Disk_state.level_residency st;
          standby_time = Disk_state.standby_residency st;
          transition_time = Disk_state.transition_residency st;
        })
      disks
  in
  {
    Result.scheme = policy.Policy.name;
    program = Stream.program stream;
    exec_time;
    energy =
      Array.fold_left
        (fun acc (d : Result.disk_stats) -> acc +. d.Result.energy)
        0.0 disk_stats;
    disks = disk_stats;
    gap_choices = List.rev !gap_choices;
    faults =
      (match fault with
      | None -> Result.no_faults
      | Some fs -> Fault.stats fs ~exec_time);
  }
