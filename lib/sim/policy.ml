type kind = Passive | Directive_only | Timer of float | Hooked

type t = {
  name : string;
  accepts_directives : bool;
  kind : kind;
  catch_up : Disk_state.t -> now:float -> unit;
  on_complete :
    Disk_state.t -> now:float -> response:float -> nominal:float -> unit;
}

let no_catch_up _ ~now:_ = ()
let no_on_complete _ ~now:_ ~response:_ ~nominal:_ = ()

let base =
  {
    name = "Base";
    accepts_directives = false;
    kind = Passive;
    catch_up = no_catch_up;
    on_complete = no_on_complete;
  }

let tpm_catch_up threshold st ~now =
  match Disk_state.phase st with
  | Disk_state.Ready _ ->
      let fire_at = Disk_state.idle_since st +. threshold in
      if now >= fire_at then Disk_state.spin_down st ~now:fire_at
  | Disk_state.Changing _ | Disk_state.Spinning_down _ | Disk_state.Standby
  | Disk_state.Spinning_up _ ->
      ()

let tpm (config : Config.t) =
  let timer threshold =
    {
      name = "TPM";
      accepts_directives = false;
      kind = Timer threshold;
      catch_up = tpm_catch_up threshold;
      on_complete = no_on_complete;
    }
  in
  match config.tpm_threshold with
  | Some t -> timer t
  | None ->
      if Config.homogeneous config then
        timer (Dpm_disk.Power.tpm_break_even config.specs)
      else begin
        (* Heterogeneous fleet: each disk idles out at its own model's
           break-even time, so the single-threshold [Timer] shape does
           not apply and the policy runs as a per-disk hook. *)
        let per = Array.map Dpm_disk.Power.tpm_break_even config.fleet in
        let n = Array.length per in
        let catch_up st ~now =
          tpm_catch_up per.(Disk_state.id st mod n) st ~now
        in
        {
          name = "TPM";
          accepts_directives = false;
          kind = Hooked;
          catch_up;
          on_complete = no_on_complete;
        }
      end

let tpm_adaptive (config : Config.t) ~ndisks =
  let break_evens =
    Array.init ndisks (fun d ->
        Dpm_disk.Power.tpm_break_even (Config.model config ~disk:d))
  in
  let thresholds = Array.copy break_evens in
  let catch_up st ~now =
    let id = Disk_state.id st in
    match Disk_state.phase st with
    | Disk_state.Ready _ ->
        let fire_at = Disk_state.idle_since st +. thresholds.(id) in
        if now >= fire_at then begin
          (* The timer fired during this idle period; the arrival at
             [now] also tells us how long the period really was, which is
             exactly what the controller learns at wake-up time: a
             premature wake doubles the threshold, a long sleep decays
             it. *)
          Disk_state.spin_down st ~now:fire_at;
          let break_even = break_evens.(id) in
          let gap = now -. Disk_state.idle_since st in
          let t =
            if gap < break_even then thresholds.(id) *. 2.0
            else thresholds.(id) *. 0.9
          in
          thresholds.(id) <- Float.min (4.0 *. break_even) (Float.max 2.0 t)
        end
    | Disk_state.Standby | Disk_state.Spinning_down _
    | Disk_state.Spinning_up _ | Disk_state.Changing _ ->
        ()
  in
  {
    name = "ATPM";
    accepts_directives = false;
    kind = Hooked;
    catch_up;
    on_complete = no_on_complete;
  }

(* Per-disk averaging window.  The three running floats live in [sums]
   (0 = response sum, 1 = nominal sum, 2 = span start) rather than as
   mutable record fields: float fields of a mixed record box on every
   write, and [on_complete] runs per served request on the replay fast
   path. *)
type drpm_window = { mutable count : int; sums : float array }

let w_response = 0
let w_nominal = 1
let w_span_start = 2

let drpm (config : Config.t) ~ndisks =
  let windows =
    Array.init ndisks (fun _ ->
        { count = 0; sums = Array.make 3 0.0 })
  in
  let tops =
    Array.init ndisks (fun d ->
        Dpm_disk.Rpm.max_level (Config.model config ~disk:d))
  in
  (* Restores are deferred to the next idle moment: firmware cannot
     modulate the spindle mid-stream, so a burst that caught the disk at
     a drifted level is served at that level and the speed-up happens
     once the stream pauses. *)
  let pending_restore = Array.make ndisks false in
  (* Idle control with exponential back-off: the k-th downward step fires
     after idle_interval * (2^k - 1) of idleness, so the controller drops
     quickly at first but commits to deep (expensive to reverse) levels
     only for long gaps.  Steps are applied retroactively at their firing
     times so the energy accounting reflects when the controller would
     have acted. *)
  let catch_up st ~now =
    match Disk_state.phase st with
    | Disk_state.Ready _ ->
        let top = tops.(Disk_state.id st) in
        let interval = config.drpm_idle_interval in
        let start = Disk_state.idle_since st in
        if pending_restore.(Disk_state.id st) && now -. start > 0.05 then begin
          pending_restore.(Disk_state.id st) <- false;
          (* If the pause is long enough for the idle controller to act,
             restoring first would be pointless churn. *)
          if now -. start <= interval then
            Disk_state.set_level st ~now:(start +. 0.01) top
        end;
        if interval > 0.0 then begin
          (* The controller will not drift more than [drpm_floor_depth]
             steps below full speed on idleness alone: deeper levels cost
             too much to reverse when the workload returns. *)
          let floor_level = max 0 (top - config.drpm_floor_depth) in
          let k = ref 1 in
          let fire = ref (start +. interval) in
          while !fire <= now && Disk_state.level st > floor_level do
            Disk_state.set_level st ~now:!fire (Disk_state.level st - 1);
            incr k;
            fire := start +. (interval *. (Float.of_int ((1 lsl !k) - 1)))
          done
        end
    | Disk_state.Changing _ | Disk_state.Spinning_down _ | Disk_state.Standby
    | Disk_state.Spinning_up _ ->
        ()
  in
  let on_complete st ~now ~response ~nominal =
    let w = windows.(Disk_state.id st) in
    let sums = w.sums in
    if w.count = 0 then sums.(w_span_start) <- now -. response;
    w.count <- w.count + 1;
    sums.(w_response) <- sums.(w_response) +. response;
    sums.(w_nominal) <- sums.(w_nominal) +. nominal;
    (* A grossly degraded response (a request that caught the disk at a
       drifted-down level) triggers an immediate restore — the
       controller "compensating for the previous slowdown". *)
    if response > nominal *. 1.3 && Disk_state.level st < tops.(Disk_state.id st)
    then begin
      pending_restore.(Disk_state.id st) <- true;
      w.count <- 0;
      sums.(w_response) <- 0.0;
      sums.(w_nominal) <- 0.0
    end
    else if w.count >= config.drpm_window then begin
      let degradation = (sums.(w_response) /. sums.(w_nominal)) -. 1.0 in
      let nominal_total = sums.(w_nominal) in
      w.count <- 0;
      sums.(w_response) <- 0.0;
      sums.(w_nominal) <- 0.0;
      if degradation > config.drpm_upper then
        pending_restore.(Disk_state.id st) <- true
      else if degradation < config.drpm_lower then begin
        (* Step down only when the window shows real headroom: a busy
           window (demand filling much of its span) must not be slowed,
           and modulating mid-burst would block queued requests. *)
        let span = now -. sums.(w_span_start) in
        let utilization = if span > 0.0 then nominal_total /. span else 1.0 in
        let level = Disk_state.level st in
        if utilization < 0.4 && level > 0 then
          Disk_state.set_level st ~now (level - 1)
      end
    end
  in
  { name = "DRPM"; accepts_directives = false; kind = Hooked; catch_up; on_complete }

(* Online auto-tuning controller (ROADMAP item 3, DEPO-style): a
   DRPM-flavored threshold policy that learns each disk's idle-gap
   distribution as it replays.  Per disk it keeps an EWMA of observed
   gap lengths and a firing threshold [tau]; when a gap outlives [tau]
   the EWMA prediction picks the action — full spin-down when the
   predicted gap recoups a spin-up, otherwise an RPM drift to the
   configured floor level (cheap to reverse) — and the observed outcome
   hill-climbs [tau] multiplicatively within [2 s, 4 x break-even] (the
   same clamp as ATPM).  Like every decision here, firings are applied
   retroactively at their exact expiry times, so energy accounting is
   independent of when the next request happens to arrive. *)
let adaptive_min_threshold = 2.0
let adaptive_gap_floor = 1.0 (* gaps shorter than this teach nothing *)
let adaptive_alpha = 0.25 (* EWMA smoothing for gap observations *)

let adaptive_with_state (config : Config.t) ~ndisks =
  let models = Array.init ndisks (fun d -> Config.model config ~disk:d) in
  let break_evens = Array.map Dpm_disk.Power.tpm_break_even models in
  let tops = Array.map Dpm_disk.Rpm.max_level models in
  (* Start eager, like reactive DRPM's idle controller: scientific
     workloads concentrate their idleness in a handful of long gaps per
     disk, so a controller that begins at break-even and shrinks has
     nothing left to exploit by the time it has learned.  Premature
     firings cost only a cheap modulation round trip and double the
     threshold. *)
  let thresholds = Array.make ndisks adaptive_min_threshold in
  let ewma = Array.copy break_evens in
  let clamp id t =
    Float.min (4.0 *. break_evens.(id)) (Float.max adaptive_min_threshold t)
  in
  let catch_up st ~now =
    match Disk_state.phase st with
    | Disk_state.Ready _ ->
        let id = Disk_state.id st in
        let break_even = break_evens.(id) in
        let top = tops.(id) in
        let floor_level = max 0 (top - config.drpm_floor_depth) in
        let start = Disk_state.idle_since st in
        let tau = thresholds.(id) in
        let fire_at = start +. tau in
        let fired = now >= fire_at in
        (* A disk left drifted served the previous burst at that level
           (firmware cannot modulate mid-stream, so the arrival that
           cut the gap short was not blocked on a restore).  Bring it
           back to speed early in this pause — unless the pause itself
           outlives the timer, in which case the firing below keeps it
           low. *)
        if (not fired) && Disk_state.level st < top && now -. start > 0.05
        then Disk_state.set_level st ~now:(start +. 0.01) top;
        (* Fire with the oracle's own gap optimizer, but fed the EWMA
           prediction instead of the true residual — the whole
           difference between this controller and IDRPM is the quality
           of that estimate, so its energy is bounded below by the
           oracle's. *)
        let spun = ref false in
        if fired then begin
          let predicted = Float.max 0.0 (ewma.(id) -. tau) in
          let plan = Dpm_disk.Power.best_drpm_plan models.(id) predicted in
          if plan.Dpm_disk.Power.spin_down then begin
            spun := true;
            Disk_state.spin_down st ~now:fire_at
          end
          else begin
            let target = max floor_level plan.Dpm_disk.Power.level in
            if target < Disk_state.level st then
              Disk_state.set_level st ~now:fire_at target
          end
        end;
        let spun = !spun in
        (* The arrival at [now] ends the gap that began at [start]
           (idle_since survives the retroactive transition), which is
           the controller's one observation point. *)
        let gap = now -. start in
        if fired then
          (* Only gaps that outlived the timer teach the predictor:
             [ewma] estimates the length of a gap {e given} that it
             fired, which is what the next firing must predict. *)
          ewma.(id) <- ewma.(id) +. (adaptive_alpha *. (gap -. ewma.(id)));
        if gap >= adaptive_gap_floor then begin
          let residual = gap -. tau in
          let payback =
            (* What the action taken must recoup: a spin-down its
               spin-up, a drift its modulation round trip. *)
            if spun then break_even else adaptive_min_threshold
          in
          let t =
            if fired then
              if residual >= payback then tau *. 0.9 else tau *. 2.0
            else
              (* The gap ended before the timer: shrink toward it so
                 gaps of this size become exploitable. *)
              tau *. 0.7
          in
          thresholds.(id) <- clamp id t
        end
    | Disk_state.Standby | Disk_state.Spinning_down _
    | Disk_state.Spinning_up _ | Disk_state.Changing _ ->
        ()
  in
  ( {
      name = "Adaptive";
      accepts_directives = false;
      kind = Hooked;
      catch_up;
      on_complete = no_on_complete;
    },
    thresholds )

let adaptive config ~ndisks = fst (adaptive_with_state config ~ndisks)

let cm_tpm =
  {
    name = "CMTPM";
    accepts_directives = true;
    kind = Directive_only;
    catch_up = no_catch_up;
    on_complete = no_on_complete;
  }

let cm_drpm =
  {
    name = "CMDRPM";
    accepts_directives = true;
    kind = Directive_only;
    catch_up = no_catch_up;
    on_complete = no_on_complete;
  }
