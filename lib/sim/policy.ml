type kind = Passive | Directive_only | Timer of float | Hooked

type t = {
  name : string;
  accepts_directives : bool;
  kind : kind;
  catch_up : Disk_state.t -> now:float -> unit;
  on_complete :
    Disk_state.t -> now:float -> response:float -> nominal:float -> unit;
}

let no_catch_up _ ~now:_ = ()
let no_on_complete _ ~now:_ ~response:_ ~nominal:_ = ()

let base =
  {
    name = "Base";
    accepts_directives = false;
    kind = Passive;
    catch_up = no_catch_up;
    on_complete = no_on_complete;
  }

let tpm (config : Config.t) =
  let threshold =
    match config.tpm_threshold with
    | Some t -> t
    | None -> Dpm_disk.Power.tpm_break_even config.specs
  in
  let catch_up st ~now =
    match Disk_state.phase st with
    | Disk_state.Ready _ ->
        let fire_at = Disk_state.idle_since st +. threshold in
        if now >= fire_at then Disk_state.spin_down st ~now:fire_at
    | Disk_state.Changing _ | Disk_state.Spinning_down _ | Disk_state.Standby
    | Disk_state.Spinning_up _ ->
        ()
  in
  {
    name = "TPM";
    accepts_directives = false;
    kind = Timer threshold;
    catch_up;
    on_complete = no_on_complete;
  }

let tpm_adaptive (config : Config.t) ~ndisks =
  let break_even = Dpm_disk.Power.tpm_break_even config.specs in
  let thresholds = Array.make ndisks break_even in
  let catch_up st ~now =
    let id = Disk_state.id st in
    match Disk_state.phase st with
    | Disk_state.Ready _ ->
        let fire_at = Disk_state.idle_since st +. thresholds.(id) in
        if now >= fire_at then begin
          (* The timer fired during this idle period; the arrival at
             [now] also tells us how long the period really was, which is
             exactly what the controller learns at wake-up time: a
             premature wake doubles the threshold, a long sleep decays
             it. *)
          Disk_state.spin_down st ~now:fire_at;
          let gap = now -. Disk_state.idle_since st in
          let t =
            if gap < break_even then thresholds.(id) *. 2.0
            else thresholds.(id) *. 0.9
          in
          thresholds.(id) <- Float.min (4.0 *. break_even) (Float.max 2.0 t)
        end
    | Disk_state.Standby | Disk_state.Spinning_down _
    | Disk_state.Spinning_up _ | Disk_state.Changing _ ->
        ()
  in
  {
    name = "ATPM";
    accepts_directives = false;
    kind = Hooked;
    catch_up;
    on_complete = no_on_complete;
  }

(* Per-disk averaging window.  The three running floats live in [sums]
   (0 = response sum, 1 = nominal sum, 2 = span start) rather than as
   mutable record fields: float fields of a mixed record box on every
   write, and [on_complete] runs per served request on the replay fast
   path. *)
type drpm_window = { mutable count : int; sums : float array }

let w_response = 0
let w_nominal = 1
let w_span_start = 2

let drpm (config : Config.t) ~ndisks =
  let windows =
    Array.init ndisks (fun _ ->
        { count = 0; sums = Array.make 3 0.0 })
  in
  let top = Dpm_disk.Rpm.max_level config.specs in
  (* Restores are deferred to the next idle moment: firmware cannot
     modulate the spindle mid-stream, so a burst that caught the disk at
     a drifted level is served at that level and the speed-up happens
     once the stream pauses. *)
  let pending_restore = Array.make ndisks false in
  (* Idle control with exponential back-off: the k-th downward step fires
     after idle_interval * (2^k - 1) of idleness, so the controller drops
     quickly at first but commits to deep (expensive to reverse) levels
     only for long gaps.  Steps are applied retroactively at their firing
     times so the energy accounting reflects when the controller would
     have acted. *)
  let catch_up st ~now =
    match Disk_state.phase st with
    | Disk_state.Ready _ ->
        let interval = config.drpm_idle_interval in
        let start = Disk_state.idle_since st in
        if pending_restore.(Disk_state.id st) && now -. start > 0.05 then begin
          pending_restore.(Disk_state.id st) <- false;
          (* If the pause is long enough for the idle controller to act,
             restoring first would be pointless churn. *)
          if now -. start <= interval then
            Disk_state.set_level st ~now:(start +. 0.01) top
        end;
        if interval > 0.0 then begin
          (* The controller will not drift more than four steps below full
             speed on idleness alone: deeper levels cost too much to
             reverse when the workload returns. *)
          let floor_level = max 0 (top - 4) in
          let k = ref 1 in
          let fire = ref (start +. interval) in
          while !fire <= now && Disk_state.level st > floor_level do
            Disk_state.set_level st ~now:!fire (Disk_state.level st - 1);
            incr k;
            fire := start +. (interval *. (Float.of_int ((1 lsl !k) - 1)))
          done
        end
    | Disk_state.Changing _ | Disk_state.Spinning_down _ | Disk_state.Standby
    | Disk_state.Spinning_up _ ->
        ()
  in
  let on_complete st ~now ~response ~nominal =
    let w = windows.(Disk_state.id st) in
    let sums = w.sums in
    if w.count = 0 then sums.(w_span_start) <- now -. response;
    w.count <- w.count + 1;
    sums.(w_response) <- sums.(w_response) +. response;
    sums.(w_nominal) <- sums.(w_nominal) +. nominal;
    (* A grossly degraded response (a request that caught the disk at a
       drifted-down level) triggers an immediate restore — the
       controller "compensating for the previous slowdown". *)
    if response > nominal *. 1.3 && Disk_state.level st < top then begin
      pending_restore.(Disk_state.id st) <- true;
      w.count <- 0;
      sums.(w_response) <- 0.0;
      sums.(w_nominal) <- 0.0
    end
    else if w.count >= config.drpm_window then begin
      let degradation = (sums.(w_response) /. sums.(w_nominal)) -. 1.0 in
      let nominal_total = sums.(w_nominal) in
      w.count <- 0;
      sums.(w_response) <- 0.0;
      sums.(w_nominal) <- 0.0;
      if degradation > config.drpm_upper then
        pending_restore.(Disk_state.id st) <- true
      else if degradation < config.drpm_lower then begin
        (* Step down only when the window shows real headroom: a busy
           window (demand filling much of its span) must not be slowed,
           and modulating mid-burst would block queued requests. *)
        let span = now -. sums.(w_span_start) in
        let utilization = if span > 0.0 then nominal_total /. span else 1.0 in
        let level = Disk_state.level st in
        if utilization < 0.4 && level > 0 then
          Disk_state.set_level st ~now (level - 1)
      end
    end
  in
  { name = "DRPM"; accepts_directives = false; kind = Hooked; catch_up; on_complete }

let cm_tpm =
  {
    name = "CMTPM";
    accepts_directives = true;
    kind = Directive_only;
    catch_up = no_catch_up;
    on_complete = no_on_complete;
  }

let cm_drpm =
  {
    name = "CMDRPM";
    accepts_directives = true;
    kind = Directive_only;
    catch_up = no_catch_up;
    on_complete = no_on_complete;
  }
