(* Streaming software-defined power meter.

   Each disk gets a lane: a growable per-window energy array plus a
   closing frontier.  An event deposits its energy into every window it
   overlaps, pro-rated by overlap (power is constant within an event),
   priced exactly like [Timeline.reintegrate] — spans via
   [Timeline.span_power], service/occupancy at active power, aborted
   spin-ups via [Power.aborted_spin_up_energy].  Because engine and
   oracle logs are chronological in [t0] per disk, every window that
   ends at or before the lane's latest [t0] can never receive another
   deposit, so it is closed — converted to a mean-power sample, pushed
   into the retention ring and added to the lane's running integral —
   the moment that frontier passes it.  [finish] closes the tails out
   to the common horizon with zero-power padding.

   The closing bound and the deposit lower bound use the same
   [widx t = int_of_float (t /. resolution)] truncation, so float
   rounding can never close a window a later event still deposits
   into. *)

module Specs = Dpm_disk.Specs
module Power = Dpm_disk.Power
module Json = Dpm_util.Json
module Ring = Dpm_util.Ring

type sample = { disk : int; index : int; t0 : float; t1 : float; watts : float }

type lane = {
  mutable win : float array;  (* energy deposited per window *)
  mutable nwin : int;  (* highest touched window + 1 *)
  mutable closed : int;  (* windows already emitted as samples *)
  mutable frontier : float;  (* latest event t0 seen on this lane *)
  mutable emitted : float;  (* Σ watts·width over emitted samples *)
}

type t = {
  res : float;
  model : int -> Specs.t;
  slugs : string list;
  ring : sample Ring.t;
  on_sample : (sample -> unit) option;
  mutable lanes : lane array;  (* dense by disk id *)
  mutable fw : float array;  (* fleet-wide energy per window *)
  mutable fw_n : int;
  mutable sim_end_v : float;
  mutable horizon_v : float;  (* latest event end fed so far *)
  mutable finished : bool;
}

let default_resolution = 0.1
let schema_version = "dpm-meter/1"

let fresh_lane () =
  { win = [||]; nwin = 0; closed = 0; frontier = 0.0; emitted = 0.0 }

let make ?(resolution = default_resolution) ~model ~slugs ?capacity ?on_sample
    () =
  if not (Float.is_finite resolution && resolution > 0.0) then
    invalid_arg "Meter.create: resolution must be positive and finite";
  {
    res = resolution;
    model;
    slugs;
    ring = Ring.create ?capacity ();
    on_sample;
    lanes = [||];
    fw = [||];
    fw_n = 0;
    sim_end_v = 0.0;
    horizon_v = 0.0;
    finished = false;
  }

let create ?resolution ?(specs = Config.default.Config.specs) ?(fleet = [||])
    ?capacity ?on_sample () =
  let n = Array.length fleet in
  let model d = if n = 0 then specs else fleet.(d mod n) in
  let slugs =
    if n = 0 then [ Specs.name_of specs ]
    else Array.to_list (Array.map Specs.name_of fleet)
  in
  make ?resolution ~model ~slugs ?capacity ?on_sample ()

(* --- deposits and closing --- *)

let widx m t = int_of_float (t /. m.res)

let lane_of m disk =
  let n = Array.length m.lanes in
  if disk >= n then begin
    let lanes = Array.init (disk + 1) (fun _ -> fresh_lane ()) in
    Array.blit m.lanes 0 lanes 0 n;
    m.lanes <- lanes
  end;
  m.lanes.(disk)

let ensure_win l i =
  let n = Array.length l.win in
  if i >= n then begin
    let win = Array.make (max (i + 1) (max 16 (2 * n))) 0.0 in
    Array.blit l.win 0 win 0 n;
    l.win <- win
  end;
  if i + 1 > l.nwin then l.nwin <- i + 1

let ensure_fw m i =
  let n = Array.length m.fw in
  if i >= n then begin
    let fw = Array.make (max (i + 1) (max 16 (2 * n))) 0.0 in
    Array.blit m.fw 0 fw 0 n;
    m.fw <- fw
  end;
  if i + 1 > m.fw_n then m.fw_n <- i + 1

let add_win m l i e =
  ensure_win l i;
  l.win.(i) <- l.win.(i) +. e;
  ensure_fw m i;
  m.fw.(i) <- m.fw.(i) +. e

(* Spread energy [e] of an event covering [t0, t1) over the windows it
   overlaps, at constant rate.  A zero-width event that still carries
   energy lumps into the window containing [t0]. *)
let deposit m l ~t0 ~t1 e =
  if e <> 0.0 then
    if t1 <= t0 then add_win m l (max 0 (widx m t0)) e
    else begin
      let rate = e /. (t1 -. t0) in
      (* Analytic logs under faults may back-extend a burst before time
         0; there are no windows there, so the pre-zero share lumps into
         window 0 — energy is conserved, which is what the integral
         invariant needs. *)
      if t0 < 0.0 then add_win m l 0 (rate *. (Float.min t1 0.0 -. t0));
      let b = ref (max 0 (widx m t0)) in
      let continue = ref true in
      while !continue do
        let lo = float_of_int !b *. m.res in
        if lo >= t1 then continue := false
        else begin
          let hi = lo +. m.res in
          let slice = Float.min t1 hi -. Float.max t0 lo in
          if slice > 0.0 then add_win m l !b (rate *. slice);
          incr b
        end
      done
    end

let emit_sample m l disk i ~t1 =
  let t0 = float_of_int i *. m.res in
  let width = t1 -. t0 in
  let e = if i < Array.length l.win then l.win.(i) else 0.0 in
  let watts = if width > 0.0 then e /. width else 0.0 in
  let s = { disk; index = i; t0; t1; watts } in
  l.emitted <- l.emitted +. (watts *. width);
  Ring.push m.ring s;
  match m.on_sample with None -> () | Some f -> f s

(* Close every window of [l] that ends at or before the frontier: per
   disk events are chronological in [t0], so nothing can deposit there
   any more. *)
let close_ready m l disk =
  let bound = widx m l.frontier in
  while l.closed < bound do
    let i = l.closed in
    emit_sample m l disk i ~t1:(float_of_int (i + 1) *. m.res);
    l.closed <- i + 1
  done

let touch m l ~t0 ~t1 =
  if t1 > m.horizon_v then m.horizon_v <- t1;
  if t0 > l.frontier then l.frontier <- t0

let feed m ev =
  if m.finished then invalid_arg "Meter.feed: meter already finished";
  match ev with
  | Timeline.Span { disk; state; t0; t1 } ->
      let l = lane_of m disk in
      touch m l ~t0 ~t1;
      close_ready m l disk;
      (* Zero-width spans carry no energy (and an instant flash
         transition would multiply an infinite power by zero width). *)
      if t1 > t0 then
        deposit m l ~t0 ~t1 (Timeline.span_power (m.model disk) state *. (t1 -. t0))
  | Timeline.Service { disk; level; t0; t1; _ }
  | Timeline.Occupy { disk; level; t0; t1 } ->
      let l = lane_of m disk in
      touch m l ~t0 ~t1;
      close_ready m l disk;
      deposit m l ~t0 ~t1 (Power.active (m.model disk) ~level *. (t1 -. t0))
  | Timeline.Aborted { disk; t0; t1; fraction } ->
      let l = lane_of m disk in
      touch m l ~t0 ~t1;
      close_ready m l disk;
      deposit m l ~t0 ~t1 (Power.aborted_spin_up_energy (m.model disk) ~fraction)
  | Timeline.Mark _ -> ()
  | Timeline.Sim_end t ->
      m.sim_end_v <- t;
      if t > m.horizon_v then m.horizon_v <- t

let attach m sink = Timeline.on_emit sink (fun ev -> feed m ev)

let nwindows m =
  if m.horizon_v <= 0.0 then 0
  else int_of_float (Float.ceil (m.horizon_v /. m.res))

let finish m =
  if not m.finished then begin
    m.finished <- true;
    if m.sim_end_v > m.horizon_v then m.horizon_v <- m.sim_end_v;
    let nw = nwindows m in
    Array.iteri
      (fun disk l ->
        while l.closed < nw do
          let i = l.closed in
          let t1 = Float.min (float_of_int (i + 1) *. m.res) m.horizon_v in
          emit_sample m l disk i ~t1;
          l.closed <- i + 1
        done)
      m.lanes
  end

let of_timeline ?resolution ?specs ?fleet ?capacity log =
  let model = Timeline.resolve_models ?specs ?fleet log in
  let slugs =
    match fleet with
    | Some fl when Array.length fl > 0 ->
        Array.to_list (Array.map Specs.name_of fl)
    | _ -> (
        match Timeline.fleet log with
        | [] -> [ Specs.name_of (model 0) ]
        | label ->
            if List.for_all (fun s -> Specs.of_name_opt s <> None) label then
              label
            else [ Specs.name_of (model 0) ])
  in
  let m = make ?resolution ~model ~slugs ?capacity () in
  List.iter (fun ev -> feed m ev) (Timeline.events log);
  finish m;
  m

(* --- reading --- *)

let resolution m = m.res
let ndisks m = Array.length m.lanes
let sim_end m = m.sim_end_v
let horizon m = m.horizon_v
let dropped m = Ring.dropped m.ring

let samples m =
  let l = Ring.to_list m.ring in
  List.stable_sort
    (fun a b ->
      match compare a.disk b.disk with 0 -> compare a.index b.index | c -> c)
    l

let lane m disk = List.filter (fun s -> s.disk = disk) (samples m)

let integral m =
  let per_disk = Array.map (fun l -> l.emitted) m.lanes in
  { Timeline.per_disk; total = Array.fold_left ( +. ) 0.0 per_disk }

(* Window width: Δ everywhere except the final window, truncated at the
   horizon. *)
let width_of m nw i =
  let lo = float_of_int i *. m.res in
  let hi =
    if i = nw - 1 then Float.max m.horizon_v lo else lo +. m.res
  in
  hi -. lo

let peak_power m =
  let nw = nwindows m in
  let peak = ref 0.0 in
  for i = 0 to min nw m.fw_n - 1 do
    let w = width_of m nw i in
    if w > 0.0 then begin
      let p = m.fw.(i) /. w in
      if p > !peak then peak := p
    end
  done;
  !peak

let total_energy m =
  let t = ref 0.0 in
  for i = 0 to m.fw_n - 1 do
    t := !t +. m.fw.(i)
  done;
  !t

let mean_power m =
  if m.horizon_v <= 0.0 then 0.0 else total_energy m /. m.horizon_v

(* --- rendering --- *)

let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let lane_power m l nw i =
  let w = width_of m nw i in
  if w <= 0.0 then 0.0
  else (if i < Array.length l.win then l.win.(i) else 0.0) /. w

let per_disk_peak m =
  let nw = nwindows m in
  Array.fold_left
    (fun acc l ->
      let p = ref acc in
      for i = 0 to nw - 1 do
        let v = lane_power m l nw i in
        if v > !p then p := v
      done;
      !p)
    0.0 m.lanes

let strip ?(width = 64) m =
  let nw = nwindows m in
  let pmax = per_disk_peak m in
  let buf = Buffer.create 256 in
  let cols = max 1 width in
  Array.iteri
    (fun disk l ->
      Buffer.add_string buf (Printf.sprintf "disk %-3d |" disk);
      for c = 0 to cols - 1 do
        (* Width-weighted mean power over the windows this column covers. *)
        let lo = c * nw / cols and hi = max ((c + 1) * nw / cols) ((c * nw / cols) + 1) in
        let e = ref 0.0 and w = ref 0.0 in
        for i = lo to min (hi - 1) (nw - 1) do
          let wi = width_of m nw i in
          e := !e +. (lane_power m l nw i *. wi);
          w := !w +. wi
        done;
        let p = if !w > 0.0 then !e /. !w else 0.0 in
        let glyph =
          if pmax <= 0.0 || p <= 0.0 then ramp.(0)
          else ramp.(min 9 (1 + int_of_float (p /. pmax *. 8.0)))
        in
        Buffer.add_char buf glyph
      done;
      Buffer.add_string buf "|\n")
    m.lanes;
  Buffer.contents buf

let summary m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "power meter: resolution %gs, %d windows, horizon %.3fs, %d samples \
        kept (%d dropped)\n"
       m.res (nwindows m) m.horizon_v (Ring.length m.ring) (dropped m));
  Buffer.add_string buf
    (Printf.sprintf "power strip over [0, %.3fs] (shade ramp \" .:-=+*#%%@\", \
                     lane peak %.2f W):\n"
       m.horizon_v (per_disk_peak m));
  Buffer.add_string buf (strip m);
  let table =
    Dpm_util.Table.create ~title:"per-disk power"
      ~columns:
        [
          ("disk", Dpm_util.Table.Left);
          ("model", Dpm_util.Table.Left);
          ("peak-w", Dpm_util.Table.Right);
          ("mean-w", Dpm_util.Table.Right);
          ("energy-j", Dpm_util.Table.Right);
        ]
  in
  let nw = nwindows m in
  Array.iteri
    (fun disk l ->
      let peak = ref 0.0 and energy = ref 0.0 in
      for i = 0 to nw - 1 do
        let p = lane_power m l nw i in
        if p > !peak then peak := p;
        energy := !energy +. (if i < Array.length l.win then l.win.(i) else 0.0)
      done;
      let mean = if m.horizon_v > 0.0 then !energy /. m.horizon_v else 0.0 in
      Dpm_util.Table.add_row table
        [
          string_of_int disk;
          Specs.name_of (m.model disk);
          Dpm_util.Table.cell_f !peak;
          Dpm_util.Table.cell_f mean;
          Dpm_util.Table.cell_f !energy;
        ])
    m.lanes;
  Buffer.add_string buf (Dpm_util.Table.render table);
  Buffer.add_string buf
    (Printf.sprintf "fleet: peak %.2f W, mean %.2f W, energy %.2f J\n"
       (peak_power m) (mean_power m) (total_energy m));
  Buffer.contents buf

(* --- export: dpm-meter/1 --- *)

type section = {
  m_scheme : string;
  m_program : string;
  m_resolution : float;
  m_ndisks : int;
  m_windows : int;
  m_sim_end : float;
  m_horizon : float;
  m_fleet : string list;
  m_dropped : int;
  m_samples : sample list;
}

let to_section ?(scheme = "") ?(program = "") m =
  {
    m_scheme = scheme;
    m_program = program;
    m_resolution = m.res;
    m_ndisks = ndisks m;
    m_windows = nwindows m;
    m_sim_end = m.sim_end_v;
    m_horizon = m.horizon_v;
    m_fleet = m.slugs;
    m_dropped = dropped m;
    m_samples = samples m;
  }

let fstr x = Printf.sprintf "%.17g" x
let json_str s = Json.to_string (Json.Str s)

let write_jsonl sec oc =
  Printf.fprintf oc
    "{\"schema\":%s,\"scheme\":%s,\"program\":%s,\"resolution\":%s,\"ndisks\":%d,\"windows\":%d,\"sim_end\":%s,\"horizon\":%s,\"fleet\":%s,\"dropped\":%d}\n"
    (json_str schema_version) (json_str sec.m_scheme) (json_str sec.m_program)
    (fstr sec.m_resolution) sec.m_ndisks sec.m_windows (fstr sec.m_sim_end)
    (fstr sec.m_horizon)
    (json_str (String.concat ";" sec.m_fleet))
    sec.m_dropped;
  List.iter
    (fun s ->
      Printf.fprintf oc "{\"disk\":%d,\"i\":%d,\"t0\":%s,\"t1\":%s,\"w\":%s}\n"
        s.disk s.index (fstr s.t0) (fstr s.t1) (fstr s.watts))
    sec.m_samples

let write_csv sec oc =
  output_string oc "scheme,program,disk,index,t0,t1,watts\n";
  List.iter
    (fun s ->
      Printf.fprintf oc "%s,%s,%d,%d,%s,%s,%s\n" sec.m_scheme sec.m_program
        s.disk s.index (fstr s.t0) (fstr s.t1) (fstr s.watts))
    sec.m_samples

let read_jsonl ic =
  let fail line msg = failwith (Printf.sprintf "Meter.read_jsonl: %s: %s" msg line) in
  let str j k =
    match Option.bind (Json.member k j) Json.to_str with
    | Some s -> s
    | None -> fail (Json.to_string j) ("missing string " ^ k)
  in
  let num j k =
    match Option.bind (Json.member k j) Json.to_float with
    | Some v -> v
    | None -> fail (Json.to_string j) ("missing number " ^ k)
  in
  let int j k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> v
    | None -> fail (Json.to_string j) ("missing int " ^ k)
  in
  let sections = ref [] in
  let current = ref None in
  let close () =
    match !current with
    | None -> ()
    | Some (meta, rev) ->
        sections := { meta with m_samples = List.rev rev } :: !sections;
        current := None
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let j =
           match Json.parse_string line with
           | Ok j -> j
           | Error e -> fail line e
         in
         match Json.member "schema" j with
         | Some s ->
             if Json.to_str s <> Some schema_version then
               fail line "unsupported schema";
             close ();
             let fleet =
               match String.split_on_char ';' (str j "fleet") with
               | [ "" ] -> []
               | l -> l
             in
             current :=
               Some
                 ( {
                     m_scheme = str j "scheme";
                     m_program = str j "program";
                     m_resolution = num j "resolution";
                     m_ndisks = int j "ndisks";
                     m_windows = int j "windows";
                     m_sim_end = num j "sim_end";
                     m_horizon = num j "horizon";
                     m_fleet = fleet;
                     m_dropped = int j "dropped";
                     m_samples = [];
                   },
                   [] )
         | None -> (
             match !current with
             | None -> fail line "sample before any meta line"
             | Some (meta, rev) ->
                 let s =
                   {
                     disk = int j "disk";
                     index = int j "i";
                     t0 = num j "t0";
                     t1 = num j "t1";
                     watts = num j "w";
                   }
                 in
                 current := Some (meta, s :: rev))
       end
     done
   with End_of_file -> ());
  close ();
  List.rev !sections
