(** Specialized zero-allocation replay core.

    The semantics are defined by [Engine]'s reference body; this module
    re-implements the single-stream replay over structure-of-arrays
    chunks ({!Dpm_trace.Trace.Stream.next_soa}) with one monomorphic
    inner loop per {!Policy.kind} and the dominant-case service
    arithmetic inlined.  Results — energies, execution times, fault
    counters, gap choices, timelines, telemetry histograms — are
    byte-identical to the reference for every supported policy, pinned
    by the differential suite (test/test_fastpath.ml).  Reach it
    through [Engine.run_stream ?core] rather than calling it directly. *)

val supported : config:Config.t -> Policy.t -> bool
(** Whether this core can replay the configuration/policy pair.  True
    for every policy the simulator currently defines under the eager
    FCFS order (heterogeneous fleets included); false for the
    unoccupied shape [Hooked] + [accepts_directives] and for every
    deferred queue discipline ([config.sched <> Fcfs]) — the engine
    then falls back to the reference body in {!Sched}. *)

val replay :
  config:Config.t ->
  mode:[ `Open | `Closed ] ->
  fault:Fault.state option ->
  timeline:Timeline.sink option ->
  obs:Observe.t option ->
  Policy.t ->
  Dpm_trace.Trace.Stream.t ->
  Result.t
(** Drain the stream and return the outcome (the stream is consumed).
    Raises [Invalid_argument] if {!supported} is false for the
    policy. *)
