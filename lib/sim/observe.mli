(** Per-replay telemetry histograms, shared by the reference replay
    body ({!Engine}) and the specialized one ({!Fastpath}).

    A replay accumulates service latency, queue depth and retry counts
    into its own local histograms and merges them into
    {!Dpm_util.Telemetry.global} once at the end ({!flush}) — so
    observation never perturbs simulated values, and both replay cores
    produce identical histogram contents by construction (they call the
    very same accumulation code). *)

type t

val make : unit -> t option
(** [Some] fresh histograms when the global telemetry collector has
    histograms enabled, [None] otherwise. *)

val arrival : t -> ring:float array -> arrival:float -> unit
(** Record the queue depth seen by a request arriving at [arrival]:
    completions in [ring] still in the future at that time. *)

val service :
  t -> fault:Fault.state option -> retries_before:int -> response:float -> unit
(** Record one request's response time, and (under fault injection) its
    transient-retry count as the delta from [retries_before]. *)

val observe_arrival : t option -> ring:float array -> arrival:float -> unit
(** {!arrival} with the [None] check inside — the reference body's
    per-event call shape. *)

val observe_service :
  t option ->
  fault:Fault.state option ->
  retries_before:int ->
  response:float ->
  unit

val observe_dispatch : t option -> wait:float -> seek_blocks:int -> unit
(** Record one scheduler dispatch: the queue wait (dispatch − arrival,
    seconds) and the absolute head travel in stripe units.  Only the
    {!Sched} replay calls this, so legacy FCFS runs keep these
    histograms empty and {!flush} never registers them. *)

val retries_before : t option -> Fault.state option -> int
(** Retry counter sample before a serve, or 0 when either is off. *)

val flush : t option -> Result.t -> unit
(** Merge into the global collector, including the actual idle-gap
    histogram read off the finished result. *)
