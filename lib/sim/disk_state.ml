module Specs = Dpm_disk.Specs
module Rpm = Dpm_disk.Rpm
module Power = Dpm_disk.Power
module Service = Dpm_disk.Service

(* Indices into [t.hot].  The hot mutable floats live in a flat float
   array rather than as record fields: a float field of a mixed record
   boxes on every write (uniform representation), and these three are
   written per served request on the replay fast path
   ({!Fastpath.replay}), where that boxing was the last per-event
   allocation. *)
let ix_last_update = 0
let ix_total_energy = 1
let ix_idle_start = 2

(* One-entry transfer-quotient cache for the fast path: the last
   [bytes /. svc_denom.(level)] computed, keyed by its operands (bytes
   and level stored as floats — exact for any realistic request size).
   A hit returns the identical bits a fresh division would, so the
   cache never perturbs results; it exists because two serial float
   divides per event dominate the replay inner loop and request sizes
   repeat heavily in real traces.  The key slots start at -1.0, which
   no non-negative byte count matches. *)
let ix_svc_bytes = 3
let ix_svc_level = 4
let ix_svc_quot = 5

type phase =
  | Ready of int
  | Changing of { from_level : int; to_level : int; finish : float }
  | Spinning_down of { finish : float }
  | Standby
  | Spinning_up of { finish : float }

type t = {
  specs : Specs.t;
  disk_id : int;
  recorder : Timeline.sink option;
  retain_busy : bool;
  mutable phase : phase;
  hot : float array;
  mutable busy_rev : (float * float) list;
  mutable served : int;
  mutable transitions : int;
  mutable spin_downs : int;
  residency : float array;
  mutable standby_time : float;
  mutable trans_time : float;
  mutable failed : bool;
  idle_power : float array;
  active_power : float array;
  svc_base : float array;
  svc_denom : float array;
}

(* The per-level tables are computed through the exact same
   [Power]/[Service] calls the general path makes per request, so a
   table lookup yields bit-identical floats to recomputing. *)
let create ?recorder ?(retain_busy = true) specs ~id =
  let levels = Rpm.num_levels specs in
  {
    specs;
    disk_id = id;
    recorder;
    retain_busy;
    phase = Ready (Rpm.max_level specs);
    hot =
      (let h = Array.make 6 0.0 in
       h.(ix_svc_bytes) <- -1.0;
       h.(ix_svc_level) <- -1.0;
       h);
    busy_rev = [];
    served = 0;
    transitions = 0;
    spin_downs = 0;
    residency = Array.make levels 0.0;
    standby_time = 0.0;
    trans_time = 0.0;
    failed = false;
    idle_power = Array.init levels (fun l -> Power.idle specs ~level:l);
    active_power = Array.init levels (fun l -> Power.active specs ~level:l);
    svc_base =
      Array.init levels (fun l ->
          Service.seek_time specs +. Service.rotation_time specs ~level:l);
    svc_denom = Array.init levels (fun l -> Service.transfer_denom specs ~level:l);
  }

let id t = t.disk_id
let phase t = t.phase
let is_failed t = t.failed

let level t =
  match t.phase with
  | Ready l -> l
  | Changing { to_level; _ } -> to_level
  | Spinning_down _ | Standby -> 0
  | Spinning_up _ -> Rpm.max_level t.specs

let idle_since t = t.hot.(ix_idle_start)

let charge t power dt =
  if dt > 0.0 then t.hot.(ix_total_energy) <- t.hot.(ix_total_energy) +. (power *. dt)

(* Constant power drawn in each phase (service energy is charged
   separately by [serve]). *)
let phase_power t = function
  | Ready l -> Power.idle t.specs ~level:l
  | Changing { from_level; to_level; _ } ->
      Power.idle t.specs ~level:(max from_level to_level)
  | Spinning_down _ -> t.specs.Specs.e_spin_down /. t.specs.Specs.t_spin_down
  | Standby -> Power.standby t.specs
  | Spinning_up _ -> t.specs.Specs.e_spin_up /. t.specs.Specs.t_spin_up

let note_residency t ph dt =
  if dt > 0.0 then
    match ph with
    | Ready l -> t.residency.(l) <- t.residency.(l) +. dt
    | Standby -> t.standby_time <- t.standby_time +. dt
    | Changing _ | Spinning_down _ | Spinning_up _ ->
        t.trans_time <- t.trans_time +. dt

(* Timeline recording.  Purely observational: emission never feeds back
   into the accounting above, so a run with a sink installed produces
   the exact same [Result] as one without. *)

let state_of_phase = function
  | Ready l -> Timeline.Ready l
  | Changing { from_level; to_level; _ } ->
      Timeline.Changing { from_level; to_level }
  | Spinning_down _ -> Timeline.Spinning_down
  | Standby -> Timeline.Standby
  | Spinning_up _ -> Timeline.Spinning_up

let emit t ev =
  match t.recorder with Some s -> Timeline.emit s ev | None -> ()

(* Zero-width Ready/Standby residencies stay elided, but a zero-width
   transition span is still emitted: it witnesses the automaton edge for
   models whose spin transitions take no time (the flash tier), keeping
   the recorded log a legal walk.  Positive-duration transitions never
   produce zero-width spans, so logs of the classic models are
   unchanged. *)
let emit_span t ph t0 t1 =
  let keep =
    t1 > t0
    ||
    match ph with
    | Changing _ | Spinning_down _ | Spinning_up _ -> t1 = t0
    | Ready _ | Standby -> false
  in
  if keep then
    emit t
      (Timeline.Span { disk = t.disk_id; state = state_of_phase ph; t0; t1 })

let record t ~at mark = emit t (Timeline.Mark { disk = t.disk_id; t = at; mark })

let rec advance t now =
  if t.failed then ()
  else if now <= t.hot.(ix_last_update) then resolve_instant t
  else
    match t.phase with
    | Ready _ | Standby ->
        let dt = now -. t.hot.(ix_last_update) in
        charge t (phase_power t t.phase) dt;
        note_residency t t.phase dt;
        emit_span t t.phase t.hot.(ix_last_update) now;
        t.hot.(ix_last_update) <- now
    | Changing { to_level; finish; _ }
      when now >= finish ->
        let dt = finish -. t.hot.(ix_last_update) in
        charge t (phase_power t t.phase) dt;
        note_residency t t.phase dt;
        emit_span t t.phase t.hot.(ix_last_update) finish;
        t.hot.(ix_last_update) <- finish;
        t.phase <- Ready to_level;
        advance t now
    | Spinning_down { finish } when now >= finish ->
        let dt = finish -. t.hot.(ix_last_update) in
        charge t (phase_power t t.phase) dt;
        note_residency t t.phase dt;
        emit_span t t.phase t.hot.(ix_last_update) finish;
        t.hot.(ix_last_update) <- finish;
        t.phase <- Standby;
        advance t now
    | Spinning_up { finish } when now >= finish ->
        let dt = finish -. t.hot.(ix_last_update) in
        charge t (phase_power t t.phase) dt;
        note_residency t t.phase dt;
        emit_span t t.phase t.hot.(ix_last_update) finish;
        t.hot.(ix_last_update) <- finish;
        t.phase <- Ready (Rpm.max_level t.specs);
        advance t now
    | Changing _ | Spinning_down _ | Spinning_up _ ->
        let dt = now -. t.hot.(ix_last_update) in
        charge t (phase_power t t.phase) dt;
        note_residency t t.phase dt;
        emit_span t t.phase t.hot.(ix_last_update) now;
        t.hot.(ix_last_update) <- now

(* A zero-time transition (the flash tier's instantaneous spin and
   modulation) can be pending with [finish = last_update]; no time needs
   integrating, but the phase must still resolve or chained operations
   ([ready_at]) would spin forever.  Positive-duration transitions never
   reach here unresolved, so classic models take the old path exactly. *)
and resolve_instant t =
  let lu = t.hot.(ix_last_update) in
  match t.phase with
  | Changing { to_level; finish; _ } when finish <= lu ->
      emit_span t t.phase finish finish;
      t.phase <- Ready to_level
  | Spinning_down { finish } when finish <= lu ->
      emit_span t t.phase finish finish;
      t.phase <- Standby
  | Spinning_up { finish } when finish <= lu ->
      emit_span t t.phase finish finish;
      t.phase <- Ready (Rpm.max_level t.specs)
  | Ready _ | Standby | Changing _ | Spinning_down _ | Spinning_up _ -> ()

(* Time at which the disk will next be [Ready] with no further
   intervention (standby never resolves by itself). *)
let settle_time t =
  match t.phase with
  | Ready _ -> t.hot.(ix_last_update)
  | Changing { finish; _ } | Spinning_up { finish } -> finish
  | Spinning_down { finish } -> finish (* settles into Standby *)
  | Standby -> t.hot.(ix_last_update)

let rec set_level t ~now target =
  (* Operations requested in the past (e.g. a directive issued while the
     disk still drains a queue) take effect at the disk's own clock. *)
  if t.failed then ()
  else
  let now = max now t.hot.(ix_last_update) in
  advance t now;
  match t.phase with
  | Ready l when l = target -> ()
  | Ready l ->
      let finish =
        now +. Rpm.transition_time t.specs ~from_level:l ~to_level:target
      in
      t.transitions <- t.transitions + 1;
      t.phase <- Changing { from_level = l; to_level = target; finish }
  | Changing { to_level; finish; _ } ->
      if to_level <> target then begin
        advance t finish;
        set_level t ~now:finish target
      end
  | Spinning_up { finish } ->
      advance t finish;
      set_level t ~now:finish target
  | Standby | Spinning_down _ -> ()

let rec spin_down t ~now =
  if t.failed then ()
  else
  let now = max now t.hot.(ix_last_update) in
  advance t now;
  match t.phase with
  | Standby | Spinning_down _ -> ()
  | Ready _ ->
      t.spin_downs <- t.spin_downs + 1;
      t.phase <- Spinning_down { finish = now +. t.specs.Specs.t_spin_down }
  | Changing { finish; _ } | Spinning_up { finish } ->
      advance t finish;
      spin_down t ~now:finish

let rec spin_up t ~now =
  if t.failed then ()
  else
  let now = max now t.hot.(ix_last_update) in
  advance t now;
  match t.phase with
  | Ready _ | Spinning_up _ -> ()
  | Standby ->
      t.phase <- Spinning_up { finish = now +. t.specs.Specs.t_spin_up }
  | Spinning_down { finish } ->
      advance t finish;
      spin_up t ~now:finish
  | Changing { finish; _ } ->
      advance t finish;
      spin_up t ~now:finish

(* Resolve any in-flight or low-power state into Ready, returning the
   time the disk is able to transfer and the level it settles at. *)
let rec ready_at t now =
  match t.phase with
  | Ready l -> (now, l)
  | Standby ->
      spin_up t ~now;
      ready_at t now
  | Changing { finish; _ } | Spinning_down { finish } | Spinning_up { finish }
    ->
      advance t finish;
      ready_at t finish

let serve t ~now ~bytes =
  if t.failed then max now t.hot.(ix_last_update)
  else begin
    let now = max now t.hot.(ix_last_update) in
    advance t now;
    let start, lvl = ready_at t now in
    let service = Service.request_time t.specs ~level:lvl ~bytes in
    let completion = start +. service in
    charge t (Power.active t.specs ~level:lvl) service;
    t.residency.(lvl) <- t.residency.(lvl) +. service;
    emit t
      (Timeline.Service
         {
           disk = t.disk_id;
           level = lvl;
           arrival = now;
           t0 = start;
           t1 = completion;
           bytes;
         });
    t.hot.(ix_last_update) <- completion;
    if t.retain_busy then t.busy_rev <- (start, completion) :: t.busy_rev;
    t.served <- t.served + 1;
    t.hot.(ix_idle_start) <- completion;
    completion
  end

let occupy t ~now ~seconds =
  if t.failed || seconds <= 0.0 then max now t.hot.(ix_last_update)
  else begin
    let now = max now t.hot.(ix_last_update) in
    advance t now;
    let start, lvl = ready_at t now in
    let finish = start +. seconds in
    charge t (Power.active t.specs ~level:lvl) seconds;
    t.residency.(lvl) <- t.residency.(lvl) +. seconds;
    emit t
      (Timeline.Occupy
         { disk = t.disk_id; level = lvl; t0 = start; t1 = finish });
    t.hot.(ix_last_update) <- finish;
    if t.retain_busy then t.busy_rev <- (start, finish) :: t.busy_rev;
    t.hot.(ix_idle_start) <- finish;
    finish
  end

let abort_spin_up t ~now ~fraction =
  if t.failed then max now t.hot.(ix_last_update)
  else begin
    let now = max now t.hot.(ix_last_update) in
    advance t now;
    match t.phase with
    | Standby ->
        let fraction = Float.max 0.0 (Float.min 1.0 fraction) in
        let dt = fraction *. t.specs.Specs.t_spin_up in
        if dt > 0.0 then begin
          t.hot.(ix_total_energy) <-
            t.hot.(ix_total_energy) +. Power.aborted_spin_up_energy t.specs ~fraction;
          t.hot.(ix_last_update) <- now +. dt
        end;
        emit t
          (Timeline.Aborted
             { disk = t.disk_id; t0 = now; t1 = now +. dt; fraction });
        now +. dt
    | Ready _ | Changing _ | Spinning_down _ | Spinning_up _ -> now
  end

let fail t ~at =
  if not t.failed then begin
    advance t (max at t.hot.(ix_last_update));
    record t ~at:t.hot.(ix_last_update) Timeline.Killed;
    t.failed <- true
  end

let finalize t ~at = advance t (max at (settle_time t))

let energy t = t.hot.(ix_total_energy)
let busy_intervals t = List.rev t.busy_rev

let busy_time t =
  List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 t.busy_rev

let requests_served t = t.served
let transition_count t = t.transitions
let spin_down_count t = t.spin_downs
let level_residency t = Array.copy t.residency
let standby_residency t = t.standby_time
let transition_residency t = t.trans_time
