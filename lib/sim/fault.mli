(** Seeded, deterministic fault injection for the replay engine.

    Real disk subsystems are not the perfect devices the paper simulates:
    reads fail transiently and are retried, media grows bad-sector
    regions that cost a remap on every access, spin-ups occasionally
    stick and must be re-attempted, and whole disks die.  This module
    models all four as a declarative {!spec} expanded by a splittable
    PRNG ({!Dpm_util.Rng}) into a {!plan} — a pure function of
    [(spec, geometry)] — plus per-replay mutable {!state} consulted by
    [Engine.run]/[run_many] at service time.

    Everything is deterministic: the same spec, seed and trace produce
    bit-identical results at any domain count, because each replay owns
    its own [state] (share-nothing) and every random stream is derived
    by value from the spec's seed.

    Faults cost time {e and} energy through the ordinary power model: a
    retried read is re-served for real (active power, busy interval,
    completion delay with exponential backoff), a bad-sector hit holds
    the disk at active power for the remap penalty, an aborted spin-up
    burns [fraction × e_spin_up] ({!Dpm_disk.Power.aborted_spin_up_energy})
    and leaves the disk in standby, and a dead disk stops drawing power
    while its load lands on the surviving disks. *)

(** {1 Declarative spec} *)

type spec = {
  seed : int;  (** Root of every random stream below. *)
  read_error_rate : float;
      (** Probability in [\[0, 1\]] that a service attempt fails
          transiently and is retried. *)
  bad_unit_rate : float;
      (** Target fraction of the trace's stripe-unit address space
          covered by bad-sector regions. *)
  bad_region_len : int;
      (** Mean length (stripe units) of one contiguous bad region. *)
  spin_up_failure_rate : float;
      (** Probability that a spin-up attempt from standby sticks and must
          be retried. *)
  max_retries : int;  (** Retry bound for reads and spin-ups alike. *)
  backoff : float;
      (** Base backoff in seconds; attempt [k] waits [backoff × 2^k]. *)
  remap_penalty : float;
      (** Seconds of active-power occupancy a bad-sector hit adds. *)
  disk_failures : (int * float) list;
      (** [(disk, time)]: the disk dies outright at [time] seconds. *)
}

val none : spec
(** All rates zero — replaying with it is byte-identical to replaying
    without fault injection. *)

val make :
  ?seed:int ->
  ?read_error_rate:float ->
  ?bad_unit_rate:float ->
  ?bad_region_len:int ->
  ?spin_up_failure_rate:float ->
  ?max_retries:int ->
  ?backoff:float ->
  ?remap_penalty:float ->
  ?disk_failures:(int * float) list ->
  unit ->
  spec
(** {!none} with fields overridden. *)

val is_zero : spec -> bool
(** True when the spec can never produce a fault (all rates zero, no
    disk failures) — the engine then takes the exact fault-free path. *)

val validate : spec -> (spec, string) result
(** Checks ranges (rates in [\[0,1\]], non-negative times and counts,
    positive region length) and returns a human-readable message
    otherwise. *)

val of_string : string -> (spec, string) result
(** Parses the CLI format: comma-separated [key=value] pairs over
    {!none}, e.g.
    ["seed=7,read=0.01,bad=0.005,spinfail=0.25,fail=0@30;2@45"].
    Keys: [seed], [read], [bad], [badlen], [spinfail], [retries],
    [backoff], [remap], and [fail=DISK@TIME] ([;]-separated for several
    disks).  Validates the result. *)

val to_string : spec -> string
(** Canonical [of_string] input reproducing the spec exactly
    (round-trips bit-for-bit, including floats). *)

val backoff_delay : spec -> attempt:int -> float
(** [backoff × 2^attempt] — the wait after failed attempt [attempt]. *)

(** {1 Expanded plan} *)

type plan
(** The spec expanded against a concrete geometry: sorted disjoint
    bad-sector intervals over the global stripe-unit space and a
    per-disk failure time.  A pure function of [(spec, ndisks,
    nblocks)]: no hidden state, no clock. *)

val plan : spec -> ndisks:int -> nblocks:int -> plan
(** [plan spec ~ndisks ~nblocks] expands the spec over an address space
    of [nblocks] stripe units and [ndisks] disks.  Raises
    [Invalid_argument] on an invalid spec or non-positive [ndisks]. *)

val spec_of : plan -> spec

val bad_block : plan -> block:int -> bool
(** Whether a global stripe-unit number falls in a bad region (binary
    search).  Block numbers are the trace's [io.block] values, i.e.
    {!Dpm_layout.Plan.unit_global_block} coordinates, so which disk pays
    each remap is decided by the striped layout itself. *)

val bad_unit_count : plan -> int
(** Total stripe units covered by bad regions. *)

val bad_regions : plan -> (int * int) list
(** Sorted disjoint inclusive [(lo, hi)] unit intervals. *)

val bad_disk_spread : plan -> striping:Dpm_layout.Striping.t -> int array
(** Per-disk count of bad stripe units under a striping
    (via {!Dpm_layout.Striping.region_disk_spread}, with the stripe
    factor clamped to the plan's disk count): how the regions' damage is
    dealt round-robin over the array. *)

val fail_time : plan -> disk:int -> float
(** When the disk dies ([infinity] if never). *)

(** {1 Per-replay state} *)

type state
(** Mutable per-replay fault state: per-disk random streams (derived by
    value from the spec seed, so draw order across disks cannot perturb
    them) and the fault counters.  Create one per replay — never share
    across runs. *)

val start : plan -> state

val init : spec -> ndisks:int -> nblocks:int Lazy.t -> state option
(** Validate-and-expand glue shared by every replay entry point:
    [None] when the spec can never fire (the engine then takes the
    exact fault-free path), otherwise a fresh state over the expanded
    plan.  [nblocks] stays unforced on zero specs, so streaming replays
    never pay a whole-trace scan without an active fault spec.  Raises
    [Invalid_argument] on an invalid spec. *)

val plan_of : state -> plan
(** The expanded plan this state draws from (e.g. to ask {!bad_block}
    which requests will pay a remap). *)

val sweep : state -> now:float -> kill:(int -> float -> unit) -> unit
(** Marks every disk whose failure time has passed and calls [kill disk
    time] exactly once for each, in failure-time order. *)

val serving_disk : state -> disk:int -> now:float -> int
(** The disk that actually serves a request addressed to [disk] at
    [now]: the disk itself while alive, else the next surviving disk
    (scanning [(disk + k) mod ndisks]), counting a redirect.  When every
    disk is dead the original disk is returned (the request is lost on a
    frozen state machine). *)

val is_failed : state -> disk:int -> now:float -> bool

val serve :
  state -> Disk_state.t -> now:float -> bytes:int -> block:int -> float
(** Fault-aware version of {!Disk_state.serve}: runs the bounded
    spin-up-retry loop if the disk is in standby, pays the remap penalty
    on a bad-sector hit, serves the transfer, then re-serves with
    exponential backoff while the transient-read draw fails (bounded by
    [max_retries]).  Returns the final completion time and updates the
    counters. *)

val spin_up : state -> Disk_state.t -> now:float -> unit
(** Fault-aware version of {!Disk_state.spin_up} for explicit [spin_up]
    directives: failed attempts abort, back off and retry before the
    real spin-up starts. *)

val retries_so_far : state -> int
(** Transient read retries accumulated so far — sampled before/after one
    {!serve} call, the delta is that request's retry count (telemetry
    histograms). *)

val stats : state -> exec_time:float -> Result.fault_stats
(** Counter snapshot; [failed_disks] counts failure times within
    [exec_time]. *)
