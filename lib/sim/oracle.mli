(** Ideal (oracle) schemes: ITPM and IDRPM.

    The paper's ideal versions assume "an oracle predictor for detecting
    idle periods", acting optimally with perfectly timed transitions — so
    they never perturb the timeline.  Both are computed in closed form
    from a Base replay.

    ITPM serves every request at full speed and gives every idle gap the
    energy-optimal spin-down decision ({!Dpm_disk.Power.best_tpm_plan}).

    IDRPM additionally chooses the {e serving} speed: each disk's request
    stream is split into bursts (separated by ≥ 0.5 s of idleness); a
    burst is served at the lowest RPM level that still fits every request
    inside its successor's arrival slack (no queueing, hence no
    performance penalty — "the disk speed to be used is determined
    optimally [...] also eliminates the potential performance
    penalties"), and each gap holds the level minimizing transition plus
    residency energy given the levels of its neighbouring bursts
    ({!Dpm_disk.Power.best_gap_plan}). *)

type phase =
  | Burst of { span : float * float; level : int; service : float }
      (** A request cluster: its base-time extent, the serving level the
          oracle picked, and the total service time at that level. *)
  | Gap of {
      span : float * float;
      from_level : int;  (** The level the preceding burst was served at. *)
      to_level : int;  (** The level the next burst needs on entry. *)
      plan : Dpm_disk.Power.gap_plan;
    }

val phases : ?config:Config.t -> Result.t -> disk:int -> phase list
(** The oracle's per-disk DRPM schedule (exposed for tests and the
    Table 3 comparison). *)

val itpm : ?config:Config.t -> ?timeline:Timeline.sink -> Result.t -> Result.t
(** [itpm base] derives the Ideal TPM outcome from a Base result.

    With [timeline], the closed-form schedule is also emitted as a
    synthetic event log (marked {!Timeline.set_analytic}): every busy
    interval as a full-speed service, every gap as either a ready
    residency or a spin-down/standby/spin-up triple, plus a
    [Gap_decision] mark per gap; {!Timeline.reintegrate} over it matches
    the returned energy. *)

val idrpm :
  ?config:Config.t -> ?timeline:Timeline.sink -> Result.t -> Result.t
(** [idrpm base] derives the Ideal DRPM outcome from a Base result; its
    [gap_choices] hold the oracle's per-gap RPM levels (only gaps the
    oracle exploits, i.e. level below full speed).

    With [timeline], emits the analytic schedule as events: each burst
    as one service interval at its level (the oracle lets a burst's
    service spill into its tail slack, so analytic logs are checked for
    coverage rather than strict contiguity), each gap as its modulation
    spans around the held level, plus per-gap [Gap_decision] marks. *)

val gap_plans :
  ?config:Config.t ->
  Result.t ->
  disk:int ->
  ((float * float) * Dpm_disk.Power.gap_plan) list
(** The oracle's decisions for the disk's idle gaps (all of them,
    including those left at full speed). *)
