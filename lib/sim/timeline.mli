(** Per-disk simulation event timeline: a low-overhead recorder threaded
    through {!Engine.run}/{!Engine.run_many} (and emitted in closed form
    by {!Oracle.itpm}/{!Oracle.idrpm}), plus an {e independent} energy
    re-integrator and an invariant checker that together act as a test
    oracle for the whole simulator.

    The engine's energy bookkeeping lives inside {!Disk_state} as a
    running accumulation; the timeline records every charged residency
    span, service interval and aborted spin-up as a typed event, and
    {!reintegrate} recomputes per-disk and total energy {e solely} from
    the event log and the {!Dpm_disk.Power} tables — a completely
    separate code path whose result must agree with [Result.energy] to
    within floating-point noise.  {!check} validates that the log is a
    legal execution of the TPM/DRPM power-state automaton: residencies
    are contiguous and non-overlapping, timestamps are monotone, every
    state change is a permitted transition, and the spans of each disk
    partition [0, sim_end].

    Recording is strictly observational: a replay with a sink installed
    produces a byte-identical {!Result.t} to one without. *)

(** {1 Event grammar} *)

(** A power-state residency.  Mirrors {!Disk_state.phase}, minus the
    in-flight finish times (the span's own [t1] carries them). *)
type state =
  | Ready of int  (** Spinning at an RPM level (idle power). *)
  | Changing of { from_level : int; to_level : int }
      (** Modulating between levels (idle power of the faster level). *)
  | Spinning_down  (** TPM transition to standby. *)
  | Standby
  | Spinning_up

(** Point events riding on the timeline: fault signatures, applied
    power-management directives and per-gap oracle decisions. *)
type mark =
  | Retry of int  (** Transient read error; payload = attempt index. *)
  | Remap of int  (** Bad-sector remap; payload = stripe unit. *)
  | Redirect of int
      (** Request shed from a failed disk; payload = original disk. *)
  | Killed  (** Whole-disk failure: the state machine froze here. *)
  | Directive_spin_down  (** An accepted [spin_down] trace directive. *)
  | Directive_spin_up  (** An accepted [spin_up] trace directive. *)
  | Directive_set_rpm of int  (** An accepted [set_RPM]; payload = level. *)
  | Gap_decision of { predicted : float; level : int; spin_down : bool }
      (** An oracle per-gap plan: the predicted idle-gap length and the
          level/spin-down choice made for it. *)
  | Dispatch of { disc : Config.sched; pos : int; arrival : float }
      (** One {!Dpm_sim.Sched} dispatch decision: the queue discipline,
          the head position chosen (stripe units, post-remap for
          [Sstf_remap]) and the request's enqueue time.  The mark's [t]
          is the dispatch time, so [t - arrival] is the queue wait and
          {!check} can replay the discipline's pick. *)

type event =
  | Span of { disk : int; state : state; t0 : float; t1 : float }
      (** Constant-power residency over [t0, t1). *)
  | Service of {
      disk : int;
      level : int;
      arrival : float;  (** When the request reached the disk. *)
      t0 : float;  (** Service start ([> arrival] iff it had to wait). *)
      t1 : float;
      bytes : int;  (** 0 when unknown (oracle-reconstructed). *)
    }  (** Active-power busy interval serving one request (attempt). *)
  | Occupy of { disk : int; level : int; t0 : float; t1 : float }
      (** Active-power occupancy that serves no request (remap cost). *)
  | Aborted of { disk : int; t0 : float; t1 : float; fraction : float }
      (** A spin-up attempt that stuck after [fraction] of the full
          spin-up, burning [fraction × e_spin_up] and falling back to
          standby. *)
  | Mark of { disk : int; t : float; mark : mark }
  | Sim_end of float  (** End of the simulated run ([exec_time]). *)

(** {1 Recording} *)

type sink
(** A mutable, append-only event recorder.  One per replay — never share
    across runs (domains fan out replays in parallel). *)

val sink : unit -> sink
val emit : sink -> event -> unit

val on_emit : sink -> (event -> unit) -> unit
(** Attach an online consumer: [f] is called synchronously with every
    event {!emit} records, in emission order, {e after} the event is
    appended to the sink.  The hook {!Dpm_sim.Meter} streams from.  Taps
    must be observational — they see events, they must not perturb the
    replay — and a sink with no taps pays one list match per emit. *)

val set_label : sink -> scheme:string -> program:string -> unit
(** Stamp the log with the scheme/program it records (the engine and the
    oracle do this themselves). *)

val set_analytic : sink -> unit
(** Mark the log as oracle-reconstructed: energies are exact, but the
    analytic model lets a burst's service spill into its tail slack, so
    {!check} verifies coverage instead of strict contiguity. *)

val set_fleet : sink -> string list -> unit
(** Stamp the log with the heterogeneous fleet serving it, as model
    registry slugs ({!Dpm_disk.Specs.name_of}) assigned round-robin by
    disk id.  The engine sets this only for non-empty
    {!Config.t.fleet}s, so legacy logs (and their JSONL form) are
    unchanged; {!check}/{!reintegrate}/{!summary} resolve it to
    per-disk specs when no explicit fleet is passed. *)

type t
(** A frozen event log. *)

val contents : sink -> t
(** Snapshot of everything emitted so far (the sink stays usable). *)

val events : t -> event list
(** In emission order — chronological per disk. *)

val scheme : t -> string
val program : t -> string
val is_analytic : t -> bool

val fleet : t -> string list
(** The fleet label ([[]] for homogeneous/legacy logs). *)

val ndisks : t -> int
val sim_end : t -> float
(** From the [Sim_end] event, falling back to the latest timestamp. *)

(** {1 The independent energy re-integrator} *)

type energy = { per_disk : float array; total : float }

val span_power : Dpm_disk.Specs.t -> state -> float
(** The constant power a {!Span} in this state draws under the
    {!Dpm_disk.Power} tables — the pricing {!reintegrate} uses, shared
    with {!Dpm_sim.Meter} so samples and re-integration can never
    disagree.  ([Changing] draws the idle power of its faster level.) *)

val resolve_models :
  ?specs:Dpm_disk.Specs.t ->
  ?fleet:Dpm_disk.Specs.t array ->
  t ->
  int ->
  Dpm_disk.Specs.t
(** Per-disk model resolution, exactly as {!reintegrate}/{!check} do it:
    an explicit [?fleet] wins (round-robin by disk id); otherwise the
    log's own {!fleet} label is resolved through the model registry
    (all-or-nothing — a partially resolvable label falls back whole);
    otherwise every disk is [specs] (default: {!Config.default}). *)

val reintegrate :
  ?specs:Dpm_disk.Specs.t -> ?fleet:Dpm_disk.Specs.t array -> t -> energy
(** Recompute energy from the event log alone: each [Span] at its
    state's constant power, each [Service]/[Occupy] at active power,
    each [Aborted] via {!Dpm_disk.Power.aborted_spin_up_energy} — all
    straight from the {!Dpm_disk.Power} tables (default specs:
    {!Config.default}).  For an engine log this must match
    [Result.energy] per disk and in total (relative error ≤ 1e-9);
    for an oracle log it must match the closed-form energies.
    Heterogeneous fleets resolve per-disk models from [?fleet]
    (round-robin by disk id) or, absent that, the log's own {!fleet}
    label; unresolvable labels fall back to [specs]. *)

(** {1 The invariant checker} *)

val check :
  ?specs:Dpm_disk.Specs.t ->
  ?fleet:Dpm_disk.Specs.t array ->
  t ->
  (unit, string list) result
(** Validates state-machine legality.  For engine logs: per disk, spans
    are exactly contiguous from time 0, never overlap, every adjacent
    pair is a transition the TPM/DRPM automaton permits (chained
    operations may elide a zero-length intermediate residency), service
    levels match the surrounding ready level, a disk reaches [sim_end]
    unless a [Killed] mark froze it, and spin-up always completes at the
    top level.  For analytic (oracle) logs: monotone starts, well-formed
    spans, and full coverage of [0, sim_end] (service is allowed to
    overlap the tail slack the oracle grants it).

    Per-queue legality, both modes: on any one disk [Service] intervals
    never overlap, and [Dispatch] marks must replay under their queue
    discipline — monotone dispatch times, no dispatch before its
    arrival, SSTF picks no farther than any certainly-queued request,
    SCAN moves monotonically between reversals, C-LOOK wraps to the
    lowest queued position — plus a work-conservation bound (a dispatch
    never idles past the earliest queued arrival) on fault-free lanes.
    Per-disk RPM ladders resolve like {!reintegrate} ([?fleet], then
    the log's {!fleet} label, then [specs]).  Returns all violations
    found, each as a human-readable message. *)

(** {1 Derived statistics} *)

type disk_summary = {
  disk : int;
  busy : float;  (** Seconds at active power (service + occupancy). *)
  ready : float;  (** Seconds ready-idle at any level. *)
  ready_low : float;  (** The subset of [ready] below the top level. *)
  changing : float;
  spin_down_time : float;
  standby : float;
  spin_up_time : float;
  aborted_time : float;
  services : int;
  modulations : int;  (** Maximal [Changing] runs. *)
  spin_downs : int;  (** Maximal [Spinning_down] runs. *)
  spin_ups : int;  (** Maximal [Spinning_up] runs. *)
  aborted : int;
  retries : int;
  remaps : int;
  redirects : int;
  killed_at : float option;
  missed_preactivations : int;
      (** Requests that arrived while the disk was down or still rising:
          the spin-up (or lack of one) did not complete in time. *)
  early_preactivations : int;
      (** Spin-ups that completed strictly before the next request
          (or with none following) — energy left on the table. *)
  early_margin : float;  (** Total seconds of early-wake idling. *)
  wait : float;  (** Total seconds requests waited on transitions. *)
}

val disk_summaries : t -> disk_summary array

val pre_activation_totals : t -> int * int
(** Aggregate [(missed, early)] pre-activation counts over all disks. *)

(** {1 Rendering and export} *)

val gantt : ?width:int -> t -> string
(** One fixed-width lane per disk over [0, sim_end]; each column shows
    the dominant occupation of its time bucket ([#] busy, [=] full-speed
    idle, [~] low-RPM idle, [-] modulating, [v] spinning down, [.]
    standby, [^] spinning up, [!] aborted spin-up, [X] dead). *)

val summary :
  ?specs:Dpm_disk.Specs.t -> ?fleet:Dpm_disk.Specs.t array -> t -> string
(** Human-readable report: the per-disk table ({!Dpm_util.Table}), the
    Gantt lanes, the re-integrated energy and the {!check} verdict. *)

val write_jsonl : t -> out_channel -> unit
(** One JSON object per line; a leading [meta] line carries the
    scheme/program labels, so several logs can share one file. *)

val write_csv : t -> out_channel -> unit
(** Flat one-row-per-event CSV with a header row. *)

val read_jsonl : in_channel -> t list
(** Parses what {!write_jsonl} wrote (any number of concatenated
    sections).  Raises [Failure] on a malformed line. *)
