(** Power-management policies for the replay engine.

    A policy reacts at two hook points: [catch_up], called with the
    current time just before a disk is consulted (this is where
    timer-based decisions such as the TPM idleness threshold fire,
    possibly retroactively at the exact timer expiry), and
    [on_complete], called after each request completes (this is where the
    DRPM window heuristic observes response times).  Compiler-managed
    schemes take no reactive decisions at all: they set
    [accepts_directives] so the engine applies the trace's inserted
    calls. *)

type kind =
  | Passive  (** No reactive decisions at all ({!base}). *)
  | Directive_only
      (** No hooks; only trace directives act ({!cm_tpm}, {!cm_drpm}). *)
  | Timer of float
      (** [catch_up] is exactly the fixed-threshold spin-down check with
          this threshold ({!tpm}) — the specialized replay core inlines
          it instead of calling the closure. *)
  | Hooked
      (** Stateful closures the replay core must call per request
          ({!tpm_adaptive}, {!drpm}). *)

type t = {
  name : string;
  accepts_directives : bool;
  kind : kind;
      (** Classification of the hooks for loop specialization.  The
          closures below are always authoritative — [kind] is a promise
          that they behave as described, relied on (and differentially
          tested) by {!Fastpath}. *)
  catch_up : Disk_state.t -> now:float -> unit;
  on_complete :
    Disk_state.t -> now:float -> response:float -> nominal:float -> unit;
}

val base : t
(** No power management: disks idle at full speed. *)

val tpm : Config.t -> t
(** Reactive threshold-based spin-down (traditional power management):
    a disk idle longer than the threshold spins down and stays in standby
    until the next request arrives (paying the full spin-up then). *)

val tpm_adaptive : Config.t -> ndisks:int -> t
(** Adaptive-threshold spin-down (the paper's §2 mentions both fixed and
    adaptive thresholds; this follows Douglis et al.'s multiplicative
    scheme): each disk starts at the break-even threshold; a spin-down
    that gets woken before recouping its cost doubles the threshold, one
    that sleeps well past break-even decays it by 10%, within
    [2 s, 4 x break-even]. *)

val drpm : Config.t -> ndisks:int -> t
(** Reactive dynamic-RPM control per Gurumurthi et al.: per-disk windows
    of [drpm_window] requests; if the window's mean response-time
    degradation (vs. the full-speed service time) stays below the lower
    tolerance the disk steps one RPM level down; if it exceeds the upper
    tolerance the controller restores full speed. *)

val adaptive : Config.t -> ndisks:int -> t
(** Online auto-tuning controller (the sweep subsystem's dynamic
    counterpart): per-disk firing thresholds hill-climbed from observed
    idle gaps, with an EWMA gap prediction choosing between a full
    spin-down (predicted residual ≥ break-even) and a cheap RPM drift to
    the [drpm_floor_depth] floor.  Thresholds stay within
    [2 s, 4 x break-even]; all state is per-policy-value, so create a
    fresh one per replay. *)

val adaptive_with_state : Config.t -> ndisks:int -> t * float array
(** {!adaptive} plus the live per-disk threshold array (exposed for the
    invariant tests; the array mutates as the policy replays). *)

val cm_tpm : t
(** Compiler-managed TPM: obeys [spin_down]/[spin_up] directives only. *)

val cm_drpm : t
(** Compiler-managed DRPM: obeys [set_RPM] directives only. *)
