type disk_stats = {
  energy : float;
  busy : (float * float) list;
  requests : int;
  transitions : int;
  spin_downs : int;
  level_residency : float array;
  standby_time : float;
  transition_time : float;
}

type fault_stats = {
  read_retries : int;
  retry_delay : float;
  remaps : int;
  spin_up_recoveries : int;
  redirects : int;
  failed_disks : int;
}

let no_faults =
  {
    read_retries = 0;
    retry_delay = 0.0;
    remaps = 0;
    spin_up_recoveries = 0;
    redirects = 0;
    failed_disks = 0;
  }

let fault_events f = f.read_retries + f.remaps + f.spin_up_recoveries + f.redirects

let faults_summary f =
  Printf.sprintf
    "retries %d (+%.3f s), remaps %d, spin-up recoveries %d, redirects %d, failed disks %d"
    f.read_retries f.retry_delay f.remaps f.spin_up_recoveries f.redirects
    f.failed_disks

type t = {
  scheme : string;
  program : string;
  exec_time : float;
  energy : float;
  disks : disk_stats array;
  gap_choices : (int * float * int) list;
  faults : fault_stats;
}

let requests t = Array.fold_left (fun n d -> n + d.requests) 0 t.disks

let idle_gaps t ~disk =
  let stats = t.disks.(disk) in
  let busy = Dpm_util.Interval.of_list stats.busy in
  Dpm_util.Interval.to_list
    (Dpm_util.Interval.complement ~lo:0.0 ~hi:t.exec_time busy)

let normalized_energy t ~base = Dpm_util.Stats.ratio t.energy base.energy

let normalized_time t ~base =
  Dpm_util.Stats.ratio t.exec_time base.exec_time

let summary t =
  Printf.sprintf "%s/%s: energy %.2f J, time %.2f s, %d requests" t.program
    t.scheme t.energy t.exec_time (requests t)
