(** Simulation outcomes: everything the experiments report.

    Energy means disk-subsystem energy; execution time is the completion
    time of the whole application run (paper §4.1). *)

type disk_stats = {
  energy : float;
  busy : (float * float) list;  (** Service intervals, sorted. *)
  requests : int;
  transitions : int;  (** RPM modulations. *)
  spin_downs : int;
  level_residency : float array;
  standby_time : float;
  transition_time : float;
      (** Seconds spent modulating, spinning down or spinning up. *)
}

(** What fault injection did to the run (all zero without it). *)
type fault_stats = {
  read_retries : int;  (** Transient read errors that forced a re-service. *)
  retry_delay : float;  (** Seconds of completion delay those retries added. *)
  remaps : int;  (** Requests that hit a bad-sector region. *)
  spin_up_recoveries : int;
      (** Spin-up attempts that failed and were retried successfully. *)
  redirects : int;  (** Requests shed from a failed disk onto a survivor. *)
  failed_disks : int;  (** Disks dead by the end of the run. *)
}

val no_faults : fault_stats

val fault_events : fault_stats -> int
(** Total injected-fault events (retries + remaps + recoveries +
    redirects); 0 iff the run was fault-free. *)

val faults_summary : fault_stats -> string
(** One-line human-readable counter summary. *)

type t = {
  scheme : string;
  program : string;
  exec_time : float;  (** Seconds. *)
  energy : float;  (** Joules, summed over disks. *)
  disks : disk_stats array;
  gap_choices : (int * float * int) list;
      (** (disk, time, target level) for every down-modulation decision
          taken; used for the Table 3 misprediction comparison. *)
  faults : fault_stats;
      (** Fault-injection counters ({!no_faults} when replayed without a
          fault spec).  Retried requests re-serve for real, so
          [requests] counts every attempt. *)
}

val requests : t -> int

val idle_gaps : t -> disk:int -> (float * float) list
(** Complement of the disk's busy intervals over [\[0, exec_time)] —
    the idle periods an oracle can exploit. *)

val normalized_energy : t -> base:t -> float
val normalized_time : t -> base:t -> float

val summary : t -> string
(** One-line human-readable summary. *)
