(** Per-disk bounded request queues with pluggable service order.

    This module owns the reference replay body that {!Engine.run_stream}
    dispatches to.  The discipline comes from {!Config.t.sched}:

    - [Fcfs] (default) — requests issue eagerly in trace order, the
      exact legacy engine loop.  Homogeneous configurations replay
      byte-identically to the pre-fleet engine.
    - [Sstf] — shortest seek time first over the queued requests that
      have arrived by dispatch time.
    - [Scan] — the elevator: serve positions monotonically in the
      current direction, reversing only when that side empties.
    - [Clook] — circular LOOK: serve upward, wrap to the lowest queued
      position when nothing remains above the head.
    - [Sstf_remap] — SSTF, but a block the fault plan has remapped is
      priced at its post-remap position (the spare region one past the
      data blocks), modelling the real seek to the spare pool.

    Queues are bounded by {!Config.t.queue_depth}; a full queue stalls
    the traced application until the next dispatch frees a slot, the
    same back-pressure the FCFS completion ring applies.  Every deferred
    dispatch emits a {!Timeline.Dispatch} mark, so {!Timeline.check} can
    independently replay the discipline's choices, and feeds the
    [sim.sched.wait_s]/[sim.sched.seek_blocks] histograms via
    {!Observe.observe_dispatch}. *)

type t = Config.sched = Fcfs | Sstf | Scan | Clook | Sstf_remap

val all : t list
(** Every discipline, in {!Config.sched_names} order. *)

val name : t -> string
val of_name_opt : string -> t option

val replay :
  config:Config.t ->
  mode:[ `Open | `Closed ] ->
  fault:Fault.state option ->
  timeline:Timeline.sink option ->
  obs:Observe.t option ->
  Policy.t ->
  Dpm_trace.Trace.Stream.t ->
  Result.t
(** The reference replay under [config.sched], heterogeneous-fleet
    aware (per-disk models via {!Config.model}).  Engine-internal:
    callers should go through {!Engine.run_stream}, which adds fault
    setup, observation flushing and telemetry around this. *)
