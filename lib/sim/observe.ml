(* Replay observation (telemetry histograms).

   Hot-loop discipline: each replay accumulates into its own local
   histograms (no lock, no effect on simulated values) and merges them
   into Dpm_util.Telemetry.global once at the end.  Bucket-count merges
   are exactly commutative and associative, so the registered quantiles
   are identical at any [--domains].  [None] when histograms are off:
   the per-request cost is then a single match on [None] (the
   specialized replay core hoists even that match out of the loop). *)

type t = {
  latency : Dpm_util.Histo.t;  (* per-request service latency, s *)
  qdepth : Dpm_util.Histo.t;  (* outstanding requests at arrival *)
  retries : Dpm_util.Histo.t;  (* transient read retries per request *)
  wait : Dpm_util.Histo.t;  (* queue wait: dispatch - arrival, s *)
  seek : Dpm_util.Histo.t;  (* head travel per dispatch, stripe units *)
}

let make () =
  if Dpm_util.Telemetry.(histograms_enabled global) then
    Some
      {
        latency = Dpm_util.Histo.create ();
        qdepth = Dpm_util.Histo.create ();
        retries = Dpm_util.Histo.create ();
        wait = Dpm_util.Histo.create ();
        seek = Dpm_util.Histo.create ();
      }
  else None

(* Queue depth seen by a request: completions in the ring still in the
   future at its arrival time, i.e. requests in flight on that disk. *)
let arrival o ~ring ~arrival =
  let outstanding = ref 0 in
  Array.iter (fun c -> if c > arrival then incr outstanding) ring;
  Dpm_util.Histo.add o.qdepth (float_of_int !outstanding)

let service o ~fault ~retries_before ~response =
  Dpm_util.Histo.add o.latency response;
  match fault with
  | None -> ()
  | Some fs ->
      Dpm_util.Histo.add o.retries
        (float_of_int (Fault.retries_so_far fs - retries_before))

let observe_arrival obs ~ring ~arrival:at =
  match obs with None -> () | Some o -> arrival o ~ring ~arrival:at

let observe_service obs ~fault ~retries_before ~response =
  match obs with
  | None -> ()
  | Some o -> service o ~fault ~retries_before ~response

(* Scheduler dispatch: queue wait and absolute head travel.  Only the
   Sched replay calls this, so legacy runs keep these histograms empty
   and [flush] never registers them. *)
let observe_dispatch obs ~wait ~seek_blocks =
  match obs with
  | None -> ()
  | Some o ->
      Dpm_util.Histo.add o.wait wait;
      Dpm_util.Histo.add o.seek (float_of_int (abs seek_blocks))

let retries_before obs fault =
  match (obs, fault) with
  | Some _, Some fs -> Fault.retries_so_far fs
  | _ -> 0

let flush obs (result : Result.t) =
  match obs with
  | None -> ()
  | Some o ->
      let t = Dpm_util.Telemetry.global in
      Dpm_util.Telemetry.merge_histogram t "sim.service_latency_s" o.latency;
      Dpm_util.Telemetry.merge_histogram t "sim.queue_depth" o.qdepth;
      if Dpm_util.Histo.count o.retries > 0 then
        Dpm_util.Telemetry.merge_histogram t "sim.fault.retries_per_req"
          o.retries;
      if Dpm_util.Histo.count o.wait > 0 then
        Dpm_util.Telemetry.merge_histogram t "sim.sched.wait_s" o.wait;
      if Dpm_util.Histo.count o.seek > 0 then
        Dpm_util.Telemetry.merge_histogram t "sim.sched.seek_blocks" o.seek;
      (* Actual idle-gap lengths, read off the finished result — the
         empirical side of the compiler's predicted-gap histogram. *)
      let gaps = Dpm_util.Histo.create () in
      Array.iteri
        (fun d _ ->
          List.iter
            (fun (a, b) -> Dpm_util.Histo.add gaps (b -. a))
            (Result.idle_gaps result ~disk:d))
        result.Result.disks;
      if Dpm_util.Histo.count gaps > 0 then
        Dpm_util.Telemetry.merge_histogram t "sim.idle_gap.actual_s" gaps
