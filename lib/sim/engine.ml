module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace
module Stream = Dpm_trace.Trace.Stream

type mode = [ `Open | `Closed ]

(* Replay observation lives in {!Observe} (shared with the specialized
   core, so both accumulate histograms through identical code). *)
let make_obs = Observe.make
let observe_arrival = Observe.observe_arrival
let observe_service = Observe.observe_service
let flush_obs = Observe.flush
let retries_before = Observe.retries_before

(* The reference replay body lives in {!Sched}: FCFS is the eager
   legacy loop, everything else defers requests into per-disk bounded
   queues and dispatches by discipline. *)
let replay = Sched.replay

let record_replay metrics (result : Result.t) =
  Dpm_util.Metrics.add metrics "sim.requests" (Result.requests result);
  Dpm_util.Metrics.count metrics "sim.runs";
  let f = result.Result.faults in
  if f.Result.read_retries > 0 then
    Dpm_util.Metrics.add metrics "sim.fault.retries" f.Result.read_retries;
  if f.Result.remaps > 0 then
    Dpm_util.Metrics.add metrics "sim.fault.remaps" f.Result.remaps;
  if f.Result.spin_up_recoveries > 0 then
    Dpm_util.Metrics.add metrics "sim.fault.spinup_recoveries"
      f.Result.spin_up_recoveries;
  if f.Result.redirects > 0 then
    Dpm_util.Metrics.add metrics "sim.fault.redirects" f.Result.redirects

type core = [ `Fast | `Reference ]

let run_stream ?(config = Config.default) ?(mode = `Open)
    ?(metrics = Dpm_util.Metrics.global) ?(faults = Fault.none) ?timeline
    ?(core = `Fast) policy stream =
  let fault =
    Fault.init faults ~ndisks:(Stream.ndisks stream)
      ~nblocks:(lazy (Stream.nblocks stream))
  in
  let obs = make_obs () in
  let result =
    Dpm_util.Telemetry.span ~metrics
      ~args:(fun () ->
        [
          ("scheme", policy.Policy.name); ("program", Stream.program stream);
        ])
      Dpm_util.Telemetry.global "sim.replay"
      (fun () ->
        match core with
        | `Fast when Fastpath.supported ~config policy ->
            Fastpath.replay ~config ~mode ~fault ~timeline ~obs policy stream
        | `Fast | `Reference ->
            replay ~config ~mode ~fault ~timeline ~obs policy stream)
  in
  flush_obs obs result;
  record_replay metrics result;
  result

let run ?config ?mode ?metrics ?faults ?timeline ?core policy trace =
  run_stream ?config ?mode ?metrics ?faults ?timeline ?core policy
    (Stream.of_trace trace)

(* --- Multiprogrammed replay --- *)

type app = {
  stream : Stream.t;
  mutable chunk : Request.event array;
  mutable idx : int;  (** next unprocessed event in [chunk] *)
  mutable clock : float;
  mutable done_ : bool;
}

let replay_many ~config ~mode ~fault ~timeline ~obs (policy : Policy.t)
    streams =
  (* Deferred-dispatch disciplines interleave with the per-app clocks in
     ways the merge below does not model; multiprogrammed replay is
     FCFS-only. *)
  if config.Config.sched <> Config.Fcfs then
    invalid_arg "Engine.run_many: only the FCFS scheduler is supported";
  match streams with
  | [] -> invalid_arg "Engine.run_many: no traces"
  | first :: rest ->
      let ndisks = Stream.ndisks first in
      List.iter
        (fun s ->
          if Stream.ndisks s <> ndisks then
            invalid_arg "Engine.run_many: disk counts differ")
        rest;
      let models = Array.init ndisks (fun d -> Config.model config ~disk:d) in
      let tops = Array.map Dpm_disk.Rpm.max_level models in
      let disks =
        Array.init ndisks (fun id ->
            Disk_state.create ?recorder:timeline
              ~retain_busy:config.Config.retain_busy models.(id) ~id)
      in
      let gap_choices = ref [] in
      let backlog = Array.make ndisks 0.0 in
      let depth = max 1 config.Config.queue_depth in
      let recent = Array.init ndisks (fun _ -> Array.make depth 0.0) in
      let recent_pos = Array.make ndisks 0 in
      let makespan = ref 0.0 in
      let apps =
        List.map
          (fun stream ->
            { stream; chunk = [||]; idx = 0; clock = 0.0; done_ = false })
          streams
      in
      (* Time at which an app's next event becomes runnable, pulling the
         next chunk on demand.  Exhaustion is discovered here: the tail
         think is folded into the app clock exactly once, as the
         materialized path did after its last event. *)
      let rec next_time app =
        if app.done_ then infinity
        else if app.idx < Array.length app.chunk then
          app.clock +. Request.think app.chunk.(app.idx)
        else
          match Stream.next app.stream with
          | Some chunk ->
              app.chunk <- chunk;
              app.idx <- 0;
              next_time app
          | None ->
              app.done_ <- true;
              app.chunk <- [||];
              app.clock <- app.clock +. Stream.tail_think app.stream;
              if app.clock > !makespan then makespan := app.clock;
              infinity
      in
      let sweep_failures now =
        match fault with
        | None -> ()
        | Some fs ->
            Fault.sweep fs ~now ~kill:(fun d at ->
                Disk_state.fail disks.(d) ~at)
      in
      let step app =
        let event = app.chunk.(app.idx) in
        app.idx <- app.idx + 1;
        app.clock <- app.clock +. Request.think event;
        sweep_failures app.clock;
        match event with
        | Request.Pm { directive; _ } ->
            if policy.Policy.accepts_directives then begin
              app.clock <- app.clock +. config.Config.pm_call_overhead;
              match directive with
              | Request.Spin_down d ->
                  Disk_state.record disks.(d) ~at:app.clock
                    Timeline.Directive_spin_down;
                  Disk_state.spin_down disks.(d) ~now:app.clock
              | Request.Spin_up d -> (
                  Disk_state.record disks.(d) ~at:app.clock
                    Timeline.Directive_spin_up;
                  match fault with
                  | None -> Disk_state.spin_up disks.(d) ~now:app.clock
                  | Some fs -> Fault.spin_up fs disks.(d) ~now:app.clock)
              | Request.Set_rpm { level; disk } ->
                  (* Directives planned against a taller ladder clamp to
                     this disk's own top level. *)
                  let level =
                    if level > tops.(disk) then tops.(disk) else level
                  in
                  if level < tops.(disk) then
                    gap_choices := (disk, app.clock, level) :: !gap_choices;
                  Disk_state.record disks.(disk) ~at:app.clock
                    (Timeline.Directive_set_rpm level);
                  Disk_state.set_level disks.(disk) ~now:app.clock level
            end
        | Request.Io io ->
            let d =
              match fault with
              | None -> io.disk
              | Some fs -> Fault.serving_disk fs ~disk:io.disk ~now:app.clock
            in
            if d <> io.disk then
              Disk_state.record disks.(d) ~at:app.clock
                (Timeline.Redirect io.disk);
            let oldest = recent.(d).(recent_pos.(d)) in
            if oldest > app.clock then app.clock <- oldest;
            let arrival = app.clock in
            observe_arrival obs ~ring:recent.(d) ~arrival;
            let issue = max arrival backlog.(d) in
            policy.Policy.catch_up disks.(d) ~now:issue;
            let before = retries_before obs fault in
            let completion =
              match fault with
              | None -> Disk_state.serve disks.(d) ~now:issue ~bytes:io.bytes
              | Some fs ->
                  Fault.serve fs disks.(d) ~now:issue ~bytes:io.bytes
                    ~block:io.block
            in
            backlog.(d) <- completion;
            recent.(d).(recent_pos.(d)) <- completion;
            recent_pos.(d) <- (recent_pos.(d) + 1) mod depth;
            if completion > !makespan then makespan := completion;
            let response = completion -. arrival in
            observe_service obs ~fault ~retries_before:before ~response;
            let nominal =
              Dpm_disk.Service.request_time models.(d) ~level:tops.(d)
                ~bytes:io.bytes
            in
            policy.Policy.on_complete disks.(d) ~now:completion ~response
              ~nominal;
            (match mode with
            | `Open -> app.clock <- arrival +. nominal
            | `Closed -> app.clock <- completion)
      in
      (* At every step the app with the earliest next event proceeds;
         ties go to the earlier app in list order (as the previous
         stable sort did). *)
      let rec drive () =
        let best =
          List.fold_left
            (fun best app ->
              if app.done_ then best
              else begin
                let t = next_time app in
                if app.done_ then best
                else
                  match best with
                  | Some (_, bt) when bt <= t -> best
                  | _ -> Some (app, t)
              end)
            None apps
        in
        match best with
        | None -> ()
        | Some (app, _) ->
            step app;
            drive ()
      in
      drive ();
      let exec_time =
        List.fold_left (fun acc a -> Float.max acc a.clock) !makespan apps
      in
      sweep_failures exec_time;
      Array.iter
        (fun st ->
          policy.Policy.catch_up st ~now:exec_time;
          Disk_state.finalize st ~at:exec_time)
        disks;
      let program =
        String.concat "+" (List.map (fun s -> Stream.program s) streams)
      in
      (match timeline with
      | None -> ()
      | Some sink ->
          Timeline.set_label sink ~scheme:policy.Policy.name ~program;
          if Array.length config.Config.fleet > 0 then
            Timeline.set_fleet sink
              (List.map Dpm_disk.Specs.name_of
                 (Array.to_list config.Config.fleet));
          Timeline.emit sink (Timeline.Sim_end exec_time));
      let disk_stats =
        Array.map
          (fun st ->
            {
              Result.energy = Disk_state.energy st;
              busy = Disk_state.busy_intervals st;
              requests = Disk_state.requests_served st;
              transitions = Disk_state.transition_count st;
              spin_downs = Disk_state.spin_down_count st;
              level_residency = Disk_state.level_residency st;
              standby_time = Disk_state.standby_residency st;
              transition_time = Disk_state.transition_residency st;
            })
          disks
      in
      {
        Result.scheme = policy.Policy.name;
        program;
        exec_time;
        energy =
          Array.fold_left
            (fun acc (d : Result.disk_stats) -> acc +. d.Result.energy)
            0.0 disk_stats;
        disks = disk_stats;
        gap_choices = List.rev !gap_choices;
        faults =
          (match fault with
          | None -> Result.no_faults
          | Some fs -> Fault.stats fs ~exec_time);
      }

let run_many_stream ?(config = Config.default) ?(mode = `Open)
    ?(metrics = Dpm_util.Metrics.global) ?(faults = Fault.none) ?timeline
    policy streams =
  let ndisks =
    match streams with
    | [] -> invalid_arg "Engine.run_many: no traces"
    | s :: _ -> Stream.ndisks s
  in
  let nblocks =
    lazy (List.fold_left (fun acc s -> max acc (Stream.nblocks s)) 0 streams)
  in
  let fault = Fault.init faults ~ndisks ~nblocks in
  let obs = make_obs () in
  let result =
    Dpm_util.Telemetry.span ~metrics
      ~args:(fun () ->
        [
          ("scheme", policy.Policy.name);
          ( "program",
            String.concat "+" (List.map (fun s -> Stream.program s) streams)
          );
        ])
      Dpm_util.Telemetry.global "sim.replay"
      (fun () ->
        replay_many ~config ~mode ~fault ~timeline ~obs policy streams)
  in
  flush_obs obs result;
  record_replay metrics result;
  result

let run_many ?config ?mode ?metrics ?faults ?timeline policy traces =
  run_many_stream ?config ?mode ?metrics ?faults ?timeline policy
    (List.map Stream.of_trace traces)
