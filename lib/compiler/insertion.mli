(** Power-management call insertion (paper §3).

    For every estimated idle window longer than the break-even point, the
    pass inserts an explicit call at the window's opening iteration
    ([spin_down] for TPM disks, [set_RPM] to the chosen level for DRPM
    disks) and a pre-activation call ([spin_up] / [set_RPM] to full speed)
    placed early enough that the disk is back at full speed when the next
    access arrives — the paper's Eq. 1,
    [d = ceil(Tsu / (s + Tm))] iterations before the reactivation point.
    Loops are split ("strip-mined") at the insertion iterations so the
    calls appear between loop segments rather than by unrolling.

    For DRPM the pass additionally (unless [~serve_slow:false], for
    strictly latency-sensitive replay models) selects the {e serving}
    speed of every active window — the lowest level whose per-request service time fits
    the window's estimated request budget ([request_bytes] wide, 90%
    margin) — and pre-activates to that level directly ("starts to bring
    the disk to the desired RPM level before it is actually needed"),
    so transitions never appear on the request path. *)

type scheme = Tpm | Drpm

type decision = {
  disk : int;
  window : Dap.window;  (** The estimated idle window being exploited. *)
  plan : Dpm_disk.Power.gap_plan;  (** Level / spin-down choice. *)
  from_level : int;  (** Level the disk holds when the gap opens. *)
  to_level : int;  (** Level the next phase is served at. *)
  down_at : int * int;  (** (item, ordinal) of the low-power call. *)
  up_at : (int * int) option;
      (** (item, ordinal) of the pre-activation; [None] for a window that
          runs to the end of the program. *)
}

val preactivation_distance : t_su:float -> s:float -> t_m:float -> int
(** Paper Eq. 1: iterations of lead time given the spin-up time, the
    shortest-path time through one loop iteration, and the call
    overhead. *)

val plan_decisions :
  specs:Dpm_disk.Specs.t ->
  ?pm_overhead:float ->
  ?pre_lead:float ->
  ?request_bytes:int ->
  ?serve_slow:bool ->
  scheme ->
  Dap.t ->
  Estimate.t ->
  decision list
(** The insertion plan without code modification (exposed for tests and
    the misprediction analysis).  [pre_lead] (default 0) widens every
    pre-activation guard band by that many seconds — the sweep harness's
    placement-robustness axis. *)

val insert :
  specs:Dpm_disk.Specs.t ->
  ?pm_overhead:float ->
  ?pre_lead:float ->
  ?request_bytes:int ->
  ?serve_slow:bool ->
  scheme ->
  Dpm_ir.Program.t ->
  Dap.t ->
  Estimate.t ->
  Dpm_ir.Program.t * decision list
(** Plan and apply: returns the instrumented program (loops split, calls
    inserted) plus the decisions taken. *)
