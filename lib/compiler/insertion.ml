module Ir = Dpm_ir
module Power = Dpm_disk.Power
module Rpm = Dpm_disk.Rpm

type scheme = Tpm | Drpm

type decision = {
  disk : int;
  window : Dap.window;
  plan : Power.gap_plan;
  from_level : int;
  to_level : int;
  down_at : int * int;
  up_at : (int * int) option;
}

let preactivation_distance ~t_su ~s ~t_m =
  if s +. t_m <= 0.0 then invalid_arg "preactivation_distance: zero period";
  int_of_float (ceil (t_su /. (s +. t_m)))

type point = { ordinal : int; rank : int; call : Ir.Loop.pm_call }
(* [rank] orders calls that land on the same iteration boundary:
   pre-activations and serving-speed settings (0) ahead of low-power
   calls (1). *)

type planned = {
  decisions : decision list;
  points : (int, point list) Hashtbl.t;  (* per top-level item *)
}

let add_point points item pt =
  Hashtbl.replace points item
    (pt :: Option.value ~default:[] (Hashtbl.find_opt points item))

(* Serving level for an active window: lowest speed whose total service
   demand fits the window's span (plus a quarter of the following idle
   gap for the tail), with a safety margin against estimation error.
   Intra-window jitter is absorbed by the disk queue, so the constraint
   is on throughput — the same criterion the oracle applies. *)
let serving_level ~specs ~request_bytes ~next_gap (w : Dap.window) =
  let top = Rpm.max_level specs in
  let span = w.Dap.t_end -. w.Dap.t_start in
  if w.Dap.requests <= 0 || span <= 0.0 then top
  else
    (* The tail may eat a little of the following gap, but never more
       than the bounded disk queue can hold without stalling the
       application. *)
    let tail = min (0.15 *. next_gap) 0.2 in
    let budget = 0.65 *. (span +. tail) /. float_of_int w.Dap.requests in
    Power.best_service_level specs ~budget ~bytes:request_bytes

let plan_drpm ~specs ~pm_overhead ~pre_lead ~request_bytes ~serve_slow (dap : Dap.t)
    (est : Estimate.t) =
  let top = Rpm.max_level specs in
  let nitems = Array.length est.Estimate.starts in
  let decisions = ref [] in
  let points = Hashtbl.create 16 in
  for disk = 0 to dap.Dap.ndisks - 1 do
    let windows = Array.of_list dap.Dap.windows.(disk) in
    let n = Array.length windows in
    let level_of_active i =
      if not serve_slow then top
      else
      let next_gap =
        if i + 1 < n && windows.(i + 1).Dap.state = Dap.Idle then
          windows.(i + 1).Dap.t_end -. windows.(i + 1).Dap.t_start
        else 0.0
      in
      serving_level ~specs ~request_bytes ~next_gap windows.(i)
    in
    let cur_level = ref top in
    for i = 0 to n - 1 do
      let w = windows.(i) in
      match w.Dap.state with
      | Dap.Active ->
          let ls = level_of_active i in
          (* Normally the preceding idle window's pre-activation has
             already set the serving level; corrections are needed after
             adjacent active windows (or at the very start).  A speed-up
             must complete before this phase's dense traffic begins, so
             it is pre-activated inside the previous window; a slow-down
             is placed at the phase start, where this phase's own slack
             absorbs the modulation. *)
          if ls > !cur_level then begin
            let t_pre =
              w.Dap.t_start
              -. Rpm.transition_time specs ~from_level:!cur_level ~to_level:ls
              -. (4.0 *. pm_overhead)
            in
            let ui, uord = Estimate.locate est t_pre in
            add_point points ui
              {
                ordinal = uord;
                rank = 0;
                call = Ir.Loop.Set_rpm { level = ls; disk };
              }
          end
          else if ls < !cur_level then
            add_point points w.Dap.start_item
              {
                ordinal = w.Dap.start_ord;
                rank = 0;
                call = Ir.Loop.Set_rpm { level = ls; disk };
              };
          cur_level := ls
      | Dap.Idle ->
          let gap = w.Dap.t_end -. w.Dap.t_start in
          let trailing = w.Dap.end_item >= nitems in
          let next_level =
            if trailing then !cur_level
            else if i + 1 < n && windows.(i + 1).Dap.state = Dap.Active then
              level_of_active (i + 1)
            else top
          in
          let plan =
            Power.best_gap_plan specs ~from_level:!cur_level
              ~to_level:next_level gap
          in
          let down_at = (w.Dap.start_item, w.Dap.start_ord) in
          let up_at =
            (* Pre-activate only upward transitions: a slower next phase
               can absorb its own modulation at its first access, and an
               early down-change would block the tail of this window's
               preceding burst. *)
            if trailing || next_level <= plan.Power.level then None
            else
              (* Guard band: the timing estimate is noisy, so fire the
                 pre-activation early by a fraction of the gap rather
                 than cutting it exactly to the modulation time. *)
              let guard = max pm_overhead (0.25 *. gap) +. pre_lead in
              let t_pre = w.Dap.t_end -. plan.Power.up_time -. guard in
              Some (Estimate.locate est t_pre)
          in
          (* A pre-activation landing at or before the low-power point
             means the window is too short for this code granularity. *)
          let degenerate =
            plan.Power.level <> !cur_level
            && match up_at with
               | Some u -> compare u down_at <= 0
               | None -> false
          in
          if not degenerate then begin
            if plan.Power.level <> !cur_level then
              add_point points w.Dap.start_item
                {
                  ordinal = w.Dap.start_ord;
                  rank = 1;
                  call = Ir.Loop.Set_rpm { level = plan.Power.level; disk };
                };
            (match up_at with
            | None -> ()
            | Some (ui, uord) ->
                add_point points ui
                  {
                    ordinal = uord;
                    rank = 0;
                    call = Ir.Loop.Set_rpm { level = next_level; disk };
                  });
            if plan.Power.level < top then
              decisions :=
                {
                  disk;
                  window = w;
                  plan;
                  from_level = !cur_level;
                  to_level = next_level;
                  down_at;
                  up_at;
                }
                :: !decisions;
            cur_level :=
              (if trailing || next_level <= plan.Power.level then
                 plan.Power.level
               else next_level)
          end
    done
  done;
  { decisions = List.rev !decisions; points }

let plan_tpm ~specs ~pm_overhead ~pre_lead (dap : Dap.t) (est : Estimate.t) =
  let nitems = Array.length est.Estimate.starts in
  let decisions = ref [] in
  let points = Hashtbl.create 16 in
  for disk = 0 to dap.Dap.ndisks - 1 do
    List.iter
      (fun (w : Dap.window) ->
        let gap = w.Dap.t_end -. w.Dap.t_start in
        let plan = Power.best_tpm_plan specs gap in
        if plan.Power.spin_down then begin
          let down_at = (w.Dap.start_item, w.Dap.start_ord) in
          let trailing = w.Dap.end_item >= nitems in
          let up_at =
            if trailing then None
            else
              let guard = max pm_overhead (0.25 *. gap) +. pre_lead in
              let t_pre = w.Dap.t_end -. plan.Power.up_time -. guard in
              Some (Estimate.locate est t_pre)
          in
          let degenerate =
            match up_at with Some u -> compare u down_at <= 0 | None -> false
          in
          if not degenerate then begin
            add_point points w.Dap.start_item
              { ordinal = w.Dap.start_ord; rank = 1; call = Ir.Loop.Spin_down disk };
            (match up_at with
            | None -> ()
            | Some (ui, uord) ->
                add_point points ui
                  { ordinal = uord; rank = 0; call = Ir.Loop.Spin_up disk });
            decisions :=
              {
                disk;
                window = w;
                plan;
                from_level = 0;
                to_level = 0;
                down_at;
                up_at;
              }
              :: !decisions
          end
        end)
      (Dap.idle_windows dap ~disk)
  done;
  { decisions = List.rev !decisions; points }

let plan_decisions ~specs ?(pm_overhead = 2.0e-6) ?(pre_lead = 0.0)
    ?(request_bytes = Dpm_util.Units.kib 64) ?(serve_slow = true) scheme dap
    est =
  match scheme with
  | Tpm -> (plan_tpm ~specs ~pm_overhead ~pre_lead dap est).decisions
  | Drpm ->
      (plan_drpm ~specs ~pm_overhead ~pre_lead ~request_bytes ~serve_slow dap
         est)
        .decisions

(* --- Code modification --- *)

let split_loop (l : Ir.Loop.t) points =
  let closed x = invalid_arg ("Insertion: unbound iterator " ^ x) in
  let lo = Ir.Expr.eval closed l.lo and hi = Ir.Expr.eval closed l.hi in
  let trips = if hi < lo then 0 else ((hi - lo) / l.step) + 1 in
  let segment a b =
    (* Iterations with ordinals in [a, b). *)
    if b <= a then None
    else
      Some
        (Ir.Loop.For
           {
             l with
             lo = Ir.Expr.Const (lo + (a * l.step));
             hi = Ir.Expr.Const (lo + ((b - 1) * l.step));
           })
  in
  let nodes = ref [] in
  let cursor = ref 0 in
  List.iter
    (fun p ->
      let ord = max 0 (min p.ordinal trips) in
      (match segment !cursor ord with
      | Some n -> nodes := n :: !nodes
      | None -> ());
      cursor := max !cursor ord;
      nodes := Ir.Loop.Call p.call :: !nodes)
    points;
  (match segment !cursor trips with
  | Some n -> nodes := n :: !nodes
  | None -> ());
  List.rev !nodes

let insert ~specs ?(pm_overhead = 2.0e-6) ?(pre_lead = 0.0)
    ?(request_bytes = Dpm_util.Units.kib 64) ?(serve_slow = true) scheme
    (p : Ir.Program.t) dap est =
  let planned =
    match scheme with
    | Tpm -> plan_tpm ~specs ~pm_overhead ~pre_lead dap est
    | Drpm ->
        plan_drpm ~specs ~pm_overhead ~pre_lead ~request_bytes ~serve_slow dap
          est
  in
  let body =
    List.concat
      (List.mapi
         (fun item node ->
           match Hashtbl.find_opt planned.points item with
           | None -> [ node ]
           | Some pts -> (
               let pts =
                 List.sort
                   (fun a b -> compare (a.ordinal, a.rank) (b.ordinal, b.rank))
                   pts
               in
               match node with
               | Ir.Loop.For l -> split_loop l pts
               | Ir.Loop.Stmt _ | Ir.Loop.Call _ ->
                   List.map (fun pt -> Ir.Loop.Call pt.call) pts @ [ node ]))
         p.Ir.Program.body)
  in
  (Ir.Program.with_body p body, planned.decisions)
