(** Compilation drivers: the code-transformation versions of §6 and the
    end-to-end proactive compilation of §3.

    Versions (paper §6.2):
    - [Orig]: the untransformed code;
    - [LF] / [TL]: loop fission / tiling {e without} layout optimization
      (the paper's layout-oblivious baselines);
    - [LF_DL]: layout-aware fission — fission plus proportional disk
      allocation of array groups;
    - [TL_DL]: layout-aware tiling — tiling plus layout transposition and
      per-array stripe sizing. *)

type version =
  | Orig
  | LF
  | TL
  | LF_DL
  | TL_DL
  | TL_ALL_DL
      (** Extension (the paper's future work): layout-aware tiling applied
          to every legal nest, not just the most costly one. *)

val all_versions : version list
(** The paper's versions ([TL_ALL_DL] excluded; pass it explicitly). *)

val version_name : version -> string

val transform :
  version ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Dpm_ir.Program.t * Dpm_layout.Plan.t
(** Apply one code/layout transformation version. *)

type compiled = {
  program : Dpm_ir.Program.t;  (** With power calls inserted. *)
  decisions : Insertion.decision list;
  dap : Dap.t;
  estimate : Estimate.t;  (** The (perturbed) estimate planning used. *)
  profile : Estimate.t;  (** The exact (unperturbed) timing profile. *)
}

val compile :
  scheme:Insertion.scheme ->
  ?noise:float ->
  ?seed:int ->
  ?cost:Dpm_ir.Cost.model ->
  ?cache_blocks:int ->
  ?pm_overhead:float ->
  ?pre_lead:float ->
  ?serve_slow:bool ->
  specs:Dpm_disk.Specs.t ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  compiled
(** The full proactive pipeline of paper Figure 1: footprint analysis →
    profiling estimate (perturbed by [noise], default 0) → DAP →
    power-call insertion. *)
