type version = Orig | LF | TL | LF_DL | TL_DL | TL_ALL_DL

let all_versions = [ Orig; LF; TL; LF_DL; TL_DL ]

let version_name = function
  | Orig -> "Orig"
  | LF -> "LF"
  | TL -> "TL"
  | LF_DL -> "LF+DL"
  | TL_DL -> "TL+DL"
  | TL_ALL_DL -> "TLall+DL"

let transform version (p : Dpm_ir.Program.t) plan =
  match version with
  | Orig -> (p, plan)
  | LF ->
      let grouping = Grouping.of_program p in
      (Fission.apply p grouping, plan)
  | LF_DL ->
      let grouping = Grouping.of_program p in
      let p' = Fission.apply p grouping in
      let plan' =
        Disk_alloc.plan ~ndisks:(Dpm_layout.Plan.ndisks plan) p grouping
      in
      (p', plan')
  | TL -> Tiling.apply ~dl:false p plan
  | TL_DL -> Tiling.apply ~dl:true p plan
  | TL_ALL_DL -> Tiling.apply_all ~dl:true p plan

type compiled = {
  program : Dpm_ir.Program.t;
  decisions : Insertion.decision list;
  dap : Dap.t;
  estimate : Estimate.t;
  profile : Estimate.t;
}

let compile ~scheme ?(noise = 0.0) ?(seed = 42) ?cost ?cache_blocks
    ?pm_overhead ?pre_lead ?serve_slow ~specs (p : Dpm_ir.Program.t) plan =
  let tele = Dpm_util.Telemetry.global in
  let span name f = Dpm_util.Telemetry.span tele name f in
  Dpm_util.Telemetry.span
    ~args:(fun () -> [ ("program", p.Dpm_ir.Program.name) ])
    tele "compile.pipeline"
    (fun () ->
      let activities =
        span "compile.access" (fun () ->
            Access.of_program_cached ?cache_blocks p plan)
      in
      let exact =
        span "compile.estimate" (fun () ->
            Estimate.profile ?cost ?cache_blocks ~specs p plan)
      in
      let estimate =
        if noise = 0.0 then exact else Estimate.perturb ~noise ~seed exact
      in
      let dap = span "compile.dap" (fun () -> Dap.build activities estimate) in
      let program, decisions =
        span "compile.insert" (fun () ->
            Insertion.insert ~specs ?pm_overhead ?pre_lead ?serve_slow scheme
              p dap
              estimate)
      in
      if Dpm_util.Telemetry.histograms_enabled tele then
        List.iter
          (fun (d : Insertion.decision) ->
            Dpm_util.Telemetry.observe tele "compile.idle_gap.predicted_s"
              (d.window.Dap.t_end -. d.window.Dap.t_start))
          decisions;
      { program; decisions; dap; estimate; profile = exact })
