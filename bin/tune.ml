(* Workload calibration report: compares each benchmark's measured
   characteristics against the paper's Table 2 targets, summarizes the
   idle-gap structure, and prints the per-scheme normalized energy and
   execution time (the Figure 3/4 shape, via [Sweep.normalized_table]). *)

module Metrics = Dpm_util.Metrics
module Run = Dpm_core.Run
module Scheme = Dpm_core.Scheme
module Sweep = Dpm_core.Sweep

let () =
  let specs = Dpm_sim.Config.default.Dpm_sim.Config.specs in
  Printf.printf "TPM break-even: %.2f s\n"
    (Dpm_disk.Power.tpm_break_even specs);
  Printf.printf "%-9s %9s %9s %9s %9s %10s %10s %8s %8s\n" "bench" "req"
    "req*" "time" "time*" "energy" "energy*" "MB" "MB*";
  let rows = ref [] in
  List.iter
    (fun (spec : Dpm_workloads.Suite.spec) ->
      let t0 = Metrics.now () in
      let p, plan = Dpm_core.Experiment.workload spec in
      let setup = Dpm_core.Experiment.make_setup ~noise:spec.noise () in
      let results =
        match
          Run.exec_all (Run.of_experiment ~setup (Run.Program (p, plan)))
        with
        | Ok results -> results
        | Error e ->
            Dpm_util.Log.error ~scope:"tune" (Run.error_message e);
            exit 2
      in
      let wall = Metrics.now () -. t0 in
      if Metrics.enabled Metrics.global then
        Metrics.record_span Metrics.global ("tune." ^ spec.name) wall;
      let base = List.assoc Scheme.Base results in
      let mb =
        Dpm_util.Units.mb_of_bytes (Dpm_ir.Program.total_data_bytes p)
      in
      Printf.printf
        "%-9s %9d %9d %9.2f %9.2f %10.1f %10.1f %8.2f %8.1f  (%.1fs wall)\n%!"
        spec.name
        (Dpm_sim.Result.requests base)
        spec.requests base.Dpm_sim.Result.exec_time spec.exec_time_s
        base.Dpm_sim.Result.energy spec.base_energy_j mb spec.data_mb wall;
      let all_gaps = ref [] in
      for d = 0 to 7 do
        all_gaps :=
          List.map
            (fun (a, b) -> b -. a)
            (Dpm_sim.Result.idle_gaps base ~disk:d)
          @ !all_gaps
      done;
      let gaps = List.filter (fun g -> g > 0.5) !all_gaps in
      if gaps <> [] then
        Printf.printf
          "          gaps>0.5s: n=%d mean=%.2fs max=%.2fs total=%.1fs (%.0f%% of disk-time)\n%!"
          (List.length gaps) (Dpm_util.Stats.mean gaps)
          (Dpm_util.Stats.maximum gaps)
          (Dpm_util.Stats.total gaps)
          (100.0
          *. Dpm_util.Stats.total gaps
          /. (8.0 *. base.Dpm_sim.Result.exec_time));
      let mis = Dpm_core.Experiment.misprediction_pct ~setup p plan in
      rows := (spec.name, results, mis) :: !rows)
    Dpm_workloads.Suite.all;
  let rows = List.rev !rows in
  let table = List.map (fun (name, results, _) -> (name, results)) rows in
  let mispred name =
    List.find_map
      (fun (n, _, mis) -> if n = name then Some mis else None)
      rows
  in
  Printf.printf "\nNormalized energy (Fig 3 shape):\n";
  print_string
    (Sweep.normalized_table ~metric:`Energy ~schemes:Scheme.all
       ~extra:("mispred%", mispred) table);
  Printf.printf "\nNormalized execution time (Fig 4 shape):\n";
  print_string
    (Sweep.normalized_table ~metric:`Time ~schemes:Scheme.all table)
