(* Workload calibration report: compares each benchmark's measured
   characteristics against the paper's Table 2 targets, summarizes the
   idle-gap structure, and prints the per-scheme normalized energy and
   execution time (the Figure 3/4 shape). *)

let () =
  let specs = Dpm_sim.Config.default.Dpm_sim.Config.specs in
  Printf.printf "TPM break-even: %.2f s\n"
    (Dpm_disk.Power.tpm_break_even specs);
  Printf.printf "%-9s %9s %9s %9s %9s %10s %10s %8s %8s\n" "bench" "req"
    "req*" "time" "time*" "energy" "energy*" "MB" "MB*";
  let rows = ref [] in
  List.iter
    (fun (spec : Dpm_workloads.Suite.spec) ->
      let t0 = Unix.gettimeofday () in
      let p, plan = Dpm_core.Experiment.workload spec in
      let setup = Dpm_core.Experiment.make_setup ~noise:spec.noise () in
      let results =
        match
          Dpm_core.Run.exec_all
            (Dpm_core.Run.spec ~setup (Dpm_core.Run.Program (p, plan)))
        with
        | Ok results -> results
        | Error e ->
            Dpm_util.Log.error ~scope:"tune" (Dpm_core.Run.error_message e);
            exit 2
      in
      let base = List.assoc Dpm_core.Scheme.Base results in
      let mb =
        Dpm_util.Units.mb_of_bytes (Dpm_ir.Program.total_data_bytes p)
      in
      Printf.printf
        "%-9s %9d %9d %9.2f %9.2f %10.1f %10.1f %8.2f %8.1f  (%.1fs wall)\n%!"
        spec.name
        (Dpm_sim.Result.requests base)
        spec.requests base.Dpm_sim.Result.exec_time spec.exec_time_s
        base.Dpm_sim.Result.energy spec.base_energy_j mb spec.data_mb
        (Unix.gettimeofday () -. t0);
      let all_gaps = ref [] in
      for d = 0 to 7 do
        all_gaps :=
          List.map
            (fun (a, b) -> b -. a)
            (Dpm_sim.Result.idle_gaps base ~disk:d)
          @ !all_gaps
      done;
      let gaps = List.filter (fun g -> g > 0.5) !all_gaps in
      if gaps <> [] then
        Printf.printf
          "          gaps>0.5s: n=%d mean=%.2fs max=%.2fs total=%.1fs (%.0f%% of disk-time)\n%!"
          (List.length gaps) (Dpm_util.Stats.mean gaps)
          (Dpm_util.Stats.maximum gaps)
          (Dpm_util.Stats.total gaps)
          (100.0
          *. Dpm_util.Stats.total gaps
          /. (8.0 *. base.Dpm_sim.Result.exec_time));
      let mis = Dpm_core.Experiment.misprediction_pct ~setup p plan in
      rows := (spec.name, results, mis) :: !rows)
    Dpm_workloads.Suite.all;
  let rows = List.rev !rows in
  Printf.printf "\nNormalized energy (Fig 3 shape):\n%-9s" "bench";
  List.iter
    (fun s -> Printf.printf " %8s" (Dpm_core.Scheme.name s))
    Dpm_core.Scheme.all;
  Printf.printf " %8s\n" "mispred%";
  let sums = Array.make (List.length Dpm_core.Scheme.all) 0.0 in
  List.iter
    (fun (name, results, mis) ->
      Printf.printf "%-9s" name;
      let base = List.assoc Dpm_core.Scheme.Base results in
      List.iteri
        (fun i s ->
          let r = List.assoc s results in
          let v = Dpm_sim.Result.normalized_energy r ~base in
          sums.(i) <- sums.(i) +. v;
          Printf.printf " %8.3f" v)
        Dpm_core.Scheme.all;
      Printf.printf " %8.2f\n" mis)
    rows;
  Printf.printf "%-9s" "AVG";
  Array.iter
    (fun s -> Printf.printf " %8.3f" (s /. float_of_int (List.length rows)))
    sums;
  Printf.printf "\n\nNormalized execution time (Fig 4 shape):\n%-9s" "bench";
  List.iter
    (fun s -> Printf.printf " %8s" (Dpm_core.Scheme.name s))
    Dpm_core.Scheme.all;
  print_newline ();
  let tsums = Array.make (List.length Dpm_core.Scheme.all) 0.0 in
  List.iter
    (fun (name, results, _) ->
      Printf.printf "%-9s" name;
      let base = List.assoc Dpm_core.Scheme.Base results in
      List.iteri
        (fun i s ->
          let r = List.assoc s results in
          let v = Dpm_sim.Result.normalized_time r ~base in
          tsums.(i) <- tsums.(i) +. v;
          Printf.printf " %8.3f" v)
        Dpm_core.Scheme.all;
      print_newline ())
    rows;
  Printf.printf "%-9s" "AVG";
  Array.iter
    (fun s -> Printf.printf " %8.3f" (s /. float_of_int (List.length rows)))
    tsums;
  print_newline ()
