(* dpmsim: command-line driver for the compiler-directed disk power
   management pipeline.

   Subcommands: list, show, simulate, compile, dap, transform, trace,
   figure.  Run `dpmsim --help` or `dpmsim CMD --help`. *)

open Cmdliner

let spec_of_name name =
  try Dpm_workloads.Suite.find name
  with Not_found ->
    Dpm_util.Log.error ~scope:"dpmsim"
      ~kv:[ ("benchmark", name) ]
      "unknown benchmark (try `dpmsim list`)";
    exit 2

let workload name =
  let spec = spec_of_name name in
  let p, plan = Dpm_core.Experiment.workload spec in
  (spec, p, plan)

let bench_arg =
  let doc = "Benchmark name (wupwise, swim, mgrid, applu, mesa, galgel)." in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~doc)

(* simulate can take a trace file instead of a benchmark, so there the
   flag is optional and exclusivity is checked in the command body. *)
let bench_opt_arg =
  let doc = "Benchmark name (wupwise, swim, mgrid, applu, mesa, galgel)." in
  Arg.(value & opt (some string) None & info [ "b"; "benchmark" ] ~doc)

let version_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "orig" -> Ok Dpm_compiler.Pipeline.Orig
    | "lf" -> Ok Dpm_compiler.Pipeline.LF
    | "tl" -> Ok Dpm_compiler.Pipeline.TL
    | "lf+dl" | "lfdl" -> Ok Dpm_compiler.Pipeline.LF_DL
    | "tl+dl" | "tldl" -> Ok Dpm_compiler.Pipeline.TL_DL
    | _ -> Error (`Msg "expected one of: orig, LF, TL, LF+DL, TL+DL")
  in
  let print ppf v =
    Format.pp_print_string ppf (Dpm_compiler.Pipeline.version_name v)
  in
  Arg.conv (parse, print)

let version_arg =
  let doc = "Code transformation version (orig, LF, TL, LF+DL, TL+DL)." in
  Arg.(
    value
    & opt version_conv Dpm_compiler.Pipeline.Orig
    & info [ "t"; "transform" ] ~doc)

let mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "open" -> Ok `Open
    | "closed" -> Ok `Closed
    | _ -> Error (`Msg "expected open or closed")
  in
  let print ppf v =
    Format.pp_print_string ppf (match v with `Open -> "open" | `Closed -> "closed")
  in
  Arg.conv (parse, print)

let mode_arg =
  let doc = "Replay model: open (the paper's trace-driven model) or closed." in
  Arg.(value & opt mode_conv `Open & info [ "mode" ] ~doc)

(* --- shared instrumentation flags
       (--domains / --metrics / --trace / --log-level) --- *)

let domains_arg =
  let doc =
    "Number of domains experiment grids fan out over (results are \
     bit-identical whatever the value; default: the runtime's \
     recommended count, or $(b,DPM_DOMAINS))."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")

let metrics_arg =
  let doc =
    "Print per-stage wall time (workload build, compile, trace \
     generation, replay) and throughput counters after the command."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_arg =
  let doc =
    "Record hierarchical spans for every pipeline stage (compile passes, \
     trace generation, each replay, every pool worker's tasks) and write \
     them as Chrome trace_event JSON, loadable in Perfetto or \
     chrome://tracing.  Recording is observational: results are \
     byte-identical with or without this flag."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let log_level_conv =
  let parse s =
    match Dpm_util.Log.level_of_string s with
    | Ok l -> Ok l
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (Dpm_util.Log.level_name l))

let log_level_arg =
  let doc = "Structured-log threshold: error, warn, info or debug." in
  Arg.(
    value
    & opt (some log_level_conv) None
    & info [ "log-level" ] ~doc ~docv:"LEVEL")

type instrument = { metrics : bool; trace : string option }

(* Evaluates before the command body: applies the domain override and
   switches the global collectors on; [finish_instrumentation] drains
   them after the command. *)
let instrument_term =
  let apply domains metrics trace log_level =
    Option.iter Dpm_util.Pool.set_default_domains domains;
    if metrics then Dpm_util.Metrics.(set_enabled global true);
    if trace <> None then Dpm_util.Telemetry.(set_tracing global true);
    Option.iter Dpm_util.Log.set_level log_level;
    { metrics; trace }
  in
  Term.(const apply $ domains_arg $ metrics_arg $ trace_arg $ log_level_arg)

let finish_instrumentation inst =
  if inst.metrics then print_string Dpm_util.Metrics.(report global);
  match inst.trace with
  | None -> ()
  | Some path -> (
      let spans = Dpm_util.Telemetry.(spans global) in
      match
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Dpm_util.Telemetry.(write_chrome_trace global) oc)
      with
      | () ->
          Dpm_util.Log.info ~scope:"dpmsim"
            ~kv:
              [
                ("file", path); ("spans", string_of_int (List.length spans));
              ]
            "wrote Chrome trace"
      | exception Sys_error m ->
          Dpm_util.Log.error ~scope:"dpmsim" ~kv:[ ("file", path) ] m)

let report_metrics inst = finish_instrumentation inst

(* --- list --- *)

let list_cmd =
  let run () =
    Printf.printf "%-9s %8s %10s %12s %10s %7s\n" "name" "MB" "requests"
      "energy(J)" "time(s)" "noise";
    List.iter
      (fun (s : Dpm_workloads.Suite.spec) ->
        Printf.printf "%-9s %8.1f %10d %12.2f %10.2f %7.2f\n" s.name s.data_mb
          s.requests s.base_energy_j s.exec_time_s s.noise)
      Dpm_workloads.Suite.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark suite (paper Table 2 targets).")
    Term.(const run $ const ())

(* --- show: print a benchmark's DSL source --- *)

let show_cmd =
  let run name =
    let spec = spec_of_name name in
    print_string (spec.Dpm_workloads.Suite.source ());
    0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a benchmark's loop-nest DSL source.")
    Term.(const run $ bench_arg)

(* --- simulate --- *)

let schemes_arg =
  let doc = "Scheme(s) to simulate (default: all seven)." in
  Arg.(
    value
    & opt (list Dpm_core.Scheme.conv) Dpm_core.Scheme.all
    & info [ "s"; "scheme" ] ~doc)

let faults_conv =
  let parse s =
    match Dpm_sim.Fault.of_string s with
    | Ok f -> Ok f
    | Error m ->
        Error
          (`Msg
            (Printf.sprintf
               "bad fault spec: %s (format: comma-separated key=value over \
                seed, read, bad, badlen, spinfail, retries, backoff, remap, \
                fail=DISK@TIME;... — e.g. \
                \"seed=7,read=0.01,bad=0.005,spinfail=0.25,fail=0@30\")"
               m))
  in
  Arg.conv
    (parse, fun ppf f -> Format.pp_print_string ppf (Dpm_sim.Fault.to_string f))

let faults_arg =
  let doc =
    "Inject deterministic faults: transient read errors ($(b,read)), \
     bad-sector regions ($(b,bad)/$(b,badlen)), sticking spin-ups \
     ($(b,spinfail)) with bounded retry + exponential backoff \
     ($(b,retries)/$(b,backoff)), remap penalties ($(b,remap)) and \
     whole-disk failures ($(b,fail=DISK\\@TIME)), all seeded by $(b,seed)."
  in
  Arg.(value & opt (some faults_conv) None & info [ "faults" ] ~doc ~docv:"SPEC")

let timeline_arg =
  let doc =
    "Record per-disk event timelines while simulating.  $(b,-) prints a \
     per-scheme summary (residency table, Gantt lanes, independently \
     re-integrated energy and the invariant-check verdict) after the \
     results table; any other value is a file to write, as JSONL (one \
     labelled section per scheme) or as CSV when the name ends in \
     $(b,.csv).  Recording is observational: the results table is \
     byte-identical with or without this flag."
  in
  Arg.(value & opt (some string) None & info [ "timeline" ] ~doc ~docv:"FILE")

let histograms_arg =
  let doc =
    "Collect and print latency / queue-depth / idle-gap histograms \
     (p50/p90/p99/max) over the replay.  Observational: the results \
     table is unchanged."
  in
  Arg.(value & flag & info [ "histograms" ] ~doc)

let meter_arg =
  let doc =
    "Sample per-disk power at a fixed resolution while simulating (the \
     software-defined power meter, streamed from the event sink; the \
     sample integral reproduces the energy column to 1e-6 relative).  \
     $(b,-) prints a per-scheme power strip and per-disk peak/mean \
     table after the results; any other value is a file to write as \
     $(b,dpm-meter/1) JSONL (one labelled section per scheme), or as \
     CSV when the name ends in $(b,.csv).  Observational: the results \
     table is byte-identical with or without this flag, and the fast \
     replay core stays engaged."
  in
  Arg.(value & opt (some string) None & info [ "meter" ] ~doc ~docv:"FILE")

let resolution_arg =
  let doc =
    "Power-meter sampling window in seconds (with $(b,--meter); default \
     0.1)."
  in
  Arg.(
    value
    & opt float Dpm_sim.Meter.default_resolution
    & info [ "resolution" ] ~doc ~docv:"SECONDS")

let trace_file_workload_arg =
  let doc =
    "Replay a saved trace file (the format $(b,dpmsim trace -o) writes) \
     instead of generating a benchmark's trace; mutually exclusive with \
     $(b,-b).  Oracle schemes derive from the trace's Base replay; CM \
     schemes replay whatever directives the file embeds."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-file" ] ~doc ~docv:"FILE")

let stream_arg =
  let doc =
    "Fused streaming pipeline: each scheme's replay pulls trace chunks \
     straight out of the generator (or the file parser, with \
     $(b,--trace-file)) in O(batch) peak memory instead of materializing \
     the whole trace first.  Results are byte-identical either way."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let batch_arg =
  let doc = "Stream chunk size in events (default 4096)." in
  Arg.(value & opt (some int) None & info [ "batch" ] ~doc ~docv:"N")

let core_arg =
  let doc =
    "Replay core: $(b,fast) (default) runs the specialized      structure-of-arrays loop when the policy supports it;      $(b,reference) forces the record-at-a-time reference body.       Results are byte-identical — $(b,reference) is the differential      oracle and escape hatch."
  in
  Arg.(
    value
    & opt (enum [ ("fast", `Fast); ("reference", `Reference) ]) `Fast
    & info [ "core" ] ~doc ~docv:"CORE")

let sched_conv =
  let parse s =
    match Dpm_sim.Config.sched_of_name_opt s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown scheduler %S (expected one of: %s)" s
               (String.concat ", "
                  (List.map fst Dpm_sim.Config.sched_names))))
  in
  Arg.conv
    ( parse,
      fun ppf s -> Format.pp_print_string ppf (Dpm_sim.Config.sched_name s) )

let sched_arg =
  let doc =
    "Per-disk request-scheduling discipline: $(b,fcfs) (default, the \
     paper's arrival-order model), $(b,sstf), $(b,scan), $(b,clook), or \
     $(b,sstf-remap) (bad-sector-aware SSTF that prices remapped blocks \
     at their post-remap spare-pool position).  Non-FCFS disciplines \
     defer requests into bounded per-disk queues (depth \
     $(b,queue-depth)) and replay on the reference core."
  in
  Arg.(
    value & opt (some sched_conv) None & info [ "sched" ] ~doc ~docv:"DISCIPLINE")

let disk_model_conv =
  let parse s =
    match Dpm_disk.Specs.of_name_opt s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown disk model %S (expected one of: %s)" s
               (String.concat ", " (List.map fst Dpm_disk.Specs.all))))
  in
  Arg.conv
    ( parse,
      fun ppf m -> Format.pp_print_string ppf (Dpm_disk.Specs.name_of m) )

let fleet_arg =
  let doc =
    "Heterogeneous fleet: comma-separated disk models assigned \
     round-robin over the array's disk ids (disk $(i,d) gets the \
     $(i,d) mod $(i,N)-th model), e.g. $(b,ultrastar_36z15,flash).  \
     Default: every disk is the homogeneous $(b,ultrastar_36z15)."
  in
  Arg.(
    value & opt (list disk_model_conv) [] & info [ "fleet" ] ~doc ~docv:"MODELS")

let sim_config_of ~fleet ~sched =
  let c = Dpm_sim.Config.default in
  let c =
    if fleet = [] then c
    else Dpm_sim.Config.with_fleet (Array.of_list fleet) c
  in
  match sched with None -> c | Some s -> Dpm_sim.Config.with_sched s c

let spec_file_arg =
  let doc =
    "Replay a saved $(b,dpm-spec/1) run-spec file (the format $(b,dpmsim \
     sweep) persists for each winning configuration, or \
     [Dpm_core.Run.to_file]).  The spec is self-contained — workload, \
     schemes, simulator configuration, faults, mode, core — so it is \
     mutually exclusive with $(b,-b)/$(b,--trace-file) and ignores the \
     per-run tuning flags."
  in
  Arg.(value & opt (some string) None & info [ "spec" ] ~doc ~docv:"FILE")

let open_loop_arg =
  let doc =
    "Simulate an open-loop multi-tenant workload: comma-separated \
     $(b,key=value) descriptor over $(b,rate) (jobs/s; required), \
     $(b,burst) (jobs per burst; makes arrivals bursty), $(b,jobs), \
     $(b,zipf) (popularity skew), $(b,seed) and $(b,sources) \
     ($(b,:)-separated benchmark names or trace-file paths), e.g. \
     $(b,\"rate=0.05,jobs=6,zipf=1,seed=3,sources=swim:mgrid\").  Each \
     arriving job replays one source; all tenants multiplex onto the \
     same disk array.  Mutually exclusive with \
     $(b,-b)/$(b,--trace-file)/$(b,--spec)."
  in
  Arg.(
    value & opt (some string) None & info [ "open-loop" ] ~doc ~docv:"SPEC")

let print_results_table results ~schemes =
  let base =
    match List.assoc_opt Dpm_core.Scheme.Base results with
    | Some b -> b
    | None -> snd (List.hd results)
  in
  let shown =
    match schemes with
    | None -> results
    | Some schemes -> List.filter (fun (s, _) -> List.mem s schemes) results
  in
  Printf.printf "%-8s %12s %10s %8s %8s\n" "scheme" "energy(J)" "time(s)"
    "E/base" "T/base";
  List.iter
    (fun (s, (r : Dpm_sim.Result.t)) ->
      Printf.printf "%-8s %12.2f %10.2f %8.3f %8.3f\n"
        (Dpm_core.Scheme.name s) r.energy r.exec_time
        (Dpm_sim.Result.normalized_energy r ~base)
        (Dpm_sim.Result.normalized_time r ~base))
    shown;
  shown

let simulate_cmd =
  (* Emit each shown scheme's meter: a rendered summary on "-", or
     dpm-meter/1 JSONL / CSV sections to a file. *)
  let emit_meters ~dest sections =
    if dest = "-" then
      List.iter
        (fun (scheme, _, m) ->
          print_newline ();
          Printf.printf "== %s ==\n" scheme;
          print_string (Dpm_sim.Meter.summary m))
        sections
    else begin
      let oc = open_out dest in
      let write =
        if Filename.check_suffix dest ".csv" then Dpm_sim.Meter.write_csv
        else Dpm_sim.Meter.write_jsonl
      in
      List.iter
        (fun (scheme, program, m) ->
          write (Dpm_sim.Meter.to_section ~scheme ~program m) oc)
        sections;
      close_out oc;
      Dpm_util.Log.info ~scope:"dpmsim"
        ~kv:
          [
            ("sections", string_of_int (List.length sections)); ("file", dest);
          ]
        "wrote power-meter samples"
    end
  in
  let run inst name trace_file open_loop spec_file schemes version mode faults
      timeline histograms stream batch core fleet sched meter resolution =
    if histograms then Dpm_util.Telemetry.(set_histograms global true);
    if
      meter <> None
      && not (Float.is_finite resolution && resolution > 0.0)
    then begin
      Dpm_util.Log.error ~scope:"dpmsim"
        "--resolution must be positive and finite";
      2
    end
    else
    match spec_file with
    | Some f when name <> None || trace_file <> None || open_loop <> None ->
        ignore f;
        Dpm_util.Log.error ~scope:"dpmsim"
          "--spec is self-contained; don't combine it with \
           -b/--benchmark, --trace-file or --open-loop";
        2
    | Some f -> (
        match Dpm_core.Run.of_file f with
        | Error e ->
            Dpm_util.Log.error ~scope:"dpmsim" (Dpm_core.Run.error_message e);
            2
        | Ok rspec -> (
            (* The spec is self-contained, but meters are live state a
               file cannot carry: allocate one sink+meter per scheme the
               run asks for, resolving power models from the spec's own
               simulator config. *)
            let metered = Hashtbl.create 8 in
            let rspec =
              match meter with
              | None -> rspec
              | Some _ ->
                  let cfg = Dpm_core.Run.sim_config rspec in
                  Dpm_core.Run.with_timeline
                    (fun s ->
                      match Hashtbl.find_opt metered s with
                      | Some (sink, _) -> Some sink
                      | None ->
                          let sink = Dpm_sim.Timeline.sink () in
                          let m =
                            Dpm_sim.Meter.create ~resolution
                              ~specs:cfg.Dpm_sim.Config.specs
                              ~fleet:cfg.Dpm_sim.Config.fleet ()
                          in
                          Dpm_sim.Meter.attach m sink;
                          Hashtbl.add metered s (sink, m);
                          Some sink)
                    rspec
            in
            match Dpm_core.Run.exec_all rspec with
            | Error e ->
                Dpm_util.Log.error ~scope:"dpmsim"
                  (Dpm_core.Run.error_message e);
                2
            | Ok results ->
                ignore (print_results_table results ~schemes:None);
                Hashtbl.iter
                  (fun _ (_, m) -> Dpm_sim.Meter.finish m)
                  metered;
                (match meter with
                | None -> ()
                | Some dest ->
                    emit_meters ~dest
                      (List.filter_map
                         (fun (s, (r : Dpm_sim.Result.t)) ->
                           Option.map
                             (fun (_, m) ->
                               ( Dpm_core.Scheme.name s,
                                 r.Dpm_sim.Result.program,
                                 m ))
                             (Hashtbl.find_opt metered s))
                         results));
                report_metrics inst;
                0))
    | None -> (
    let workload =
      match (name, trace_file, open_loop) with
      | Some n, None, None -> Ok (Dpm_core.Run.Benchmark n)
      | None, Some f, None -> Ok (Dpm_core.Run.Trace_file f)
      | None, None, Some ol -> (
          match Dpm_trace.Openloop.of_string ol with
          | Ok (load, sources) -> Ok (Dpm_core.Run.Open_loop { load; sources })
          | Error m -> Error ("bad --open-loop descriptor: " ^ m))
      | None, None, None ->
          Error
            "one of -b/--benchmark, --trace-file, --open-loop or --spec is \
             required"
      | _ ->
          Error
            "pass exactly one of -b/--benchmark, --trace-file or --open-loop"
    in
    match workload with
    | Error m ->
        Dpm_util.Log.error ~scope:"dpmsim" m;
        2
    | Ok workload -> (
    (* Base joins the run for normalization even when not requested. *)
    let run_schemes =
      if List.mem Dpm_core.Scheme.Base schemes then schemes
      else Dpm_core.Scheme.Base :: schemes
    in
    let sinks =
      match (timeline, meter) with
      | None, None -> []
      | _ -> List.map (fun s -> (s, Dpm_sim.Timeline.sink ())) run_schemes
    in
    let cfg = sim_config_of ~fleet ~sched in
    let meters =
      match meter with
      | None -> []
      | Some _ ->
          List.map
            (fun (s, sink) ->
              let m =
                Dpm_sim.Meter.create ~resolution
                  ~specs:cfg.Dpm_sim.Config.specs
                  ~fleet:cfg.Dpm_sim.Config.fleet ()
              in
              Dpm_sim.Meter.attach m sink;
              (s, m))
            sinks
    in
    let rspec =
      Dpm_core.Run.spec ~schemes:run_schemes ~sim:cfg ~mode ~version ?faults
        ?timeline:
          (match sinks with
          | [] -> None
          | _ -> Some (fun s -> List.assoc_opt s sinks))
        ~stream ?batch ~core workload
    in
    match Dpm_core.Run.exec_all rspec with
    | Error e ->
        Dpm_util.Log.error ~scope:"dpmsim" (Dpm_core.Run.error_message e);
        2
    | Ok results ->
        let shown = print_results_table results ~schemes:(Some schemes) in
        (if faults <> None then begin
           Printf.printf "\n%-8s %8s %10s %8s %11s %10s %7s\n" "scheme"
             "retries" "delay(s)" "remaps" "spinup-rec" "redirects" "failed";
           List.iter
             (fun (s, (r : Dpm_sim.Result.t)) ->
               let f = r.Dpm_sim.Result.faults in
               Printf.printf "%-8s %8d %10.3f %8d %11d %10d %7d\n"
                 (Dpm_core.Scheme.name s) f.Dpm_sim.Result.read_retries
                 f.Dpm_sim.Result.retry_delay f.Dpm_sim.Result.remaps
                 f.Dpm_sim.Result.spin_up_recoveries
                 f.Dpm_sim.Result.redirects f.Dpm_sim.Result.failed_disks)
             shown
         end);
        (match timeline with
        | None -> ()
        | Some dest ->
            let logs =
              List.filter_map
                (fun (s, _) ->
                  Option.map Dpm_sim.Timeline.contents (List.assoc_opt s sinks))
                shown
            in
            if dest = "-" then
              List.iter
                (fun tl ->
                  print_newline ();
                  print_string (Dpm_sim.Timeline.summary tl))
                logs
            else begin
              let oc = open_out dest in
              let write =
                if Filename.check_suffix dest ".csv" then
                  Dpm_sim.Timeline.write_csv
                else Dpm_sim.Timeline.write_jsonl
              in
              List.iter (fun tl -> write tl oc) logs;
              close_out oc;
              Dpm_util.Log.info ~scope:"dpmsim"
                ~kv:
                  [
                    ("sections", string_of_int (List.length logs));
                    ("file", dest);
                  ]
                "wrote timeline"
            end);
        List.iter (fun (_, m) -> Dpm_sim.Meter.finish m) meters;
        (match meter with
        | None -> ()
        | Some dest ->
            emit_meters ~dest
              (List.filter_map
                 (fun (s, (r : Dpm_sim.Result.t)) ->
                   Option.map
                     (fun m ->
                       ( Dpm_core.Scheme.name s,
                         r.Dpm_sim.Result.program,
                         m ))
                     (List.assoc_opt s meters))
                 shown));
        (if histograms then
           let rendered =
             Dpm_util.Telemetry.(histogram_report global)
           in
           if rendered <> "" then begin
             print_newline ();
             print_string rendered
           end);
        report_metrics inst;
        0))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Simulate a benchmark (or a saved trace file, or a replayable \
          dpm-spec/1 run-spec) under one or more power-management schemes.")
    Term.(
      const run $ instrument_term $ bench_opt_arg $ trace_file_workload_arg
      $ open_loop_arg $ spec_file_arg $ schemes_arg $ version_arg $ mode_arg
      $ faults_arg $ timeline_arg $ histograms_arg $ stream_arg $ batch_arg
      $ core_arg $ fleet_arg $ sched_arg $ meter_arg $ resolution_arg)

(* --- timeline: summarize a recorded event log --- *)

let timeline_cmd =
  let file_arg =
    let doc =
      "JSONL timeline file written by $(b,simulate --timeline) ($(b,-) \
       reads standard input)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FILE")
  in
  let run file =
    match
      let ic = if file = "-" then stdin else open_in file in
      Fun.protect
        ~finally:(fun () -> if ic != stdin then close_in_noerr ic)
        (fun () -> Dpm_sim.Timeline.read_jsonl ic)
    with
    | exception Sys_error m ->
        Dpm_util.Log.error ~scope:"dpmsim" m;
        2
    | exception Failure m ->
        Dpm_util.Log.error ~scope:"dpmsim" m;
        2
    | [] ->
        Dpm_util.Log.error ~scope:"dpmsim"
          ~kv:[ ("file", file) ]
          "no timeline sections";
        2
    | logs ->
        List.iteri
          (fun i tl ->
            if i > 0 then print_newline ();
            print_string (Dpm_sim.Timeline.summary tl))
          logs;
        if
          List.for_all
            (fun tl -> Dpm_sim.Timeline.check tl = Ok ())
            logs
        then 0
        else 1
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Summarize recorded event timelines: per-disk residencies, Gantt \
          lanes, independently re-integrated energy and the state-machine \
          invariant check (exit 1 on violations).")
    Term.(const run $ file_arg)

(* --- compile: print the instrumented program --- *)

let compile_cmd =
  let run name version =
    let spec, p, plan = workload name in
    let p, plan = Dpm_compiler.Pipeline.transform version p plan in
    let compiled =
      Dpm_compiler.Pipeline.compile ~scheme:Dpm_compiler.Insertion.Drpm
        ~noise:spec.Dpm_workloads.Suite.noise
        ~cache_blocks:Dpm_workloads.Suite.cache_blocks
        ~specs:Dpm_sim.Config.default.Dpm_sim.Config.specs p plan
    in
    print_string (Dpm_ir.Printer.program compiled.Dpm_compiler.Pipeline.program);
    Printf.printf "\n# %d power-management decisions\n"
      (List.length compiled.Dpm_compiler.Pipeline.decisions);
    0
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Run the proactive CMDRPM compilation and print the instrumented \
          code with its inserted set_rpm calls.")
    Term.(const run $ bench_arg $ version_arg)

(* --- dap --- *)

let disk_arg =
  let doc = "Disk id to print the DAP for." in
  Arg.(value & opt int 0 & info [ "d"; "disk" ] ~doc)

let dap_cmd =
  let run name disk version =
    let spec, p, plan = workload name in
    let p, plan = Dpm_compiler.Pipeline.transform version p plan in
    let activities =
      Dpm_compiler.Access.of_program_cached
        ~cache_blocks:Dpm_workloads.Suite.cache_blocks p plan
    in
    let est =
      Dpm_compiler.Estimate.profile
        ~cache_blocks:Dpm_workloads.Suite.cache_blocks
        ~specs:Dpm_sim.Config.default.Dpm_sim.Config.specs p plan
    in
    ignore spec;
    let dap = Dpm_compiler.Dap.build activities est in
    Format.printf "@[<v>%a@]@." (Dpm_compiler.Dap.pp_disk activities)
      (dap, disk);
    0
  in
  Cmd.v
    (Cmd.info "dap"
       ~doc:"Print a disk's access pattern (the paper's Figure 2(c) form).")
    Term.(const run $ bench_arg $ disk_arg $ version_arg)

(* --- transform --- *)

let transform_cmd =
  let run name version =
    let _, p, plan = workload name in
    let p', plan' = Dpm_compiler.Pipeline.transform version p plan in
    print_string (Dpm_ir.Printer.program p');
    Format.printf "@.%a@." Dpm_layout.Plan.pp plan';
    0
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Apply a code/layout transformation and print the result.")
    Term.(const run $ bench_arg $ version_arg)

(* --- trace --- *)

let trace_cmd =
  let out_arg =
    let doc = "File to save the trace to (omit to print a summary)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let run name version out =
    let _, p, plan = workload name in
    let p, plan = Dpm_compiler.Pipeline.transform version p plan in
    let trace = Dpm_trace.Generate.run p plan in
    (match out with
    | Some path ->
        Dpm_trace.Trace.save trace path;
        Printf.printf "saved %d events to %s\n"
          (Dpm_trace.Trace.event_count trace)
          path
    | None ->
        Printf.printf
          "program=%s ndisks=%d io=%d pm=%d bytes=%d think=%.2fs\n"
          (Dpm_trace.Trace.program trace)
          (Dpm_trace.Trace.ndisks trace)
          (Dpm_trace.Trace.io_count trace)
          (Dpm_trace.Trace.pm_count trace)
          (Dpm_trace.Trace.total_bytes trace)
          (Dpm_trace.Trace.total_think trace));
    0
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate (and optionally save) an I/O trace.")
    Term.(const run $ bench_arg $ version_arg $ out_arg)

(* --- figure --- *)

let figure_cmd =
  let fig_arg =
    let doc = "Figure/table id (table1 table2 table3 fig3..fig8 fig13 ablation-closed)." in
    Arg.(non_empty & pos_all string [] & info [] ~doc ~docv:"ID")
  in
  let run inst ids =
    let available =
      [
        ("table1", Dpm_core.Figures.table1);
        ("table2", Dpm_core.Figures.table2);
        ("fig3", Dpm_core.Figures.fig3);
        ("fig4", Dpm_core.Figures.fig4);
        ("table3", Dpm_core.Figures.table3);
        ("fig5", Dpm_core.Figures.fig5);
        ("fig6", Dpm_core.Figures.fig6);
        ("fig7", Dpm_core.Figures.fig7);
        ("fig8", Dpm_core.Figures.fig8);
        ("fig13", Dpm_core.Figures.fig13);
        ("ext", Dpm_core.Figures.extensions);
        ("ext-shared", Dpm_core.Figures.shared_subsystem);
        ("ablation-knobs", Dpm_core.Figures.knob_ablation);
        ("ablation-closed", Dpm_core.Figures.closed_loop_ablation);
        ("fault-sweep", Dpm_core.Figures.fault_sweep);
        ("fig3-degraded", fun () -> Dpm_core.Figures.degraded_grid ());
      ]
    in
    let rc =
      List.fold_left
        (fun rc id ->
          match List.assoc_opt id available with
          | Some f ->
              print_string (Dpm_core.Figures.traced id f).Dpm_core.Figures.rendered;
              print_newline ();
              rc
          | None ->
              Dpm_util.Log.error ~scope:"dpmsim"
                ~kv:[ ("figure", id) ]
                "unknown figure";
              2)
        0 ids
    in
    report_metrics inst;
    rc
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's tables/figures.")
    Term.(const run $ instrument_term $ fig_arg)

(* --- report: machine-readable run report --- *)

let report_cmd =
  let out_arg =
    let doc = "File to write the JSON report to ($(b,-) for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~doc ~docv:"FILE")
  in
  let md_arg =
    let doc = "Also render the report as a markdown digest to this file." in
    Arg.(value & opt (some string) None & info [ "md" ] ~doc ~docv:"FILE")
  in
  let run inst name schemes version mode faults fleet sched out md =
    match
      Dpm_core.Report.run ~schemes ~mode ~version ?faults
        ~sim:(sim_config_of ~fleet ~sched)
        name
    with
    | Error e ->
        Dpm_util.Log.error ~scope:"dpmsim" (Dpm_core.Run.error_message e);
        2
    | Ok doc -> (
        match Dpm_core.Report.validate doc with
        | Error msgs ->
            List.iter
              (fun m -> Dpm_util.Log.error ~scope:"report" m)
              msgs;
            1
        | Ok () ->
            let text = Dpm_util.Json.to_string ~indent:1 doc ^ "\n" in
            (if out = "-" then print_string text
             else begin
               let oc = open_out out in
               output_string oc text;
               close_out oc;
               Dpm_util.Log.info ~scope:"dpmsim"
                 ~kv:[ ("file", out) ]
                 "wrote run report"
             end);
            (match md with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                output_string oc (Dpm_core.Report.markdown doc);
                close_out oc;
                Dpm_util.Log.info ~scope:"dpmsim"
                  ~kv:[ ("file", path) ]
                  "wrote markdown digest");
            report_metrics inst;
            0)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a benchmark under every scheme and emit one machine-readable \
          JSON report: energies, normalized ratios, fault counters, per-disk \
          timeline summaries with re-integrated energy and invariant \
          verdicts, latency/queue/idle-gap histograms and stage timings.")
    Term.(
      const run $ instrument_term $ bench_arg $ schemes_arg $ version_arg
      $ mode_arg $ faults_arg $ fleet_arg $ sched_arg $ out_arg $ md_arg)

(* --- report-check: validate report and trace artifacts --- *)

let report_check_cmd =
  let report_arg =
    let doc = "Run-report JSON file to validate." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"REPORT")
  in
  let trace_file_arg =
    let doc = "Chrome trace file to check for balanced B/E events." in
    Arg.(
      value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let schema_arg =
    let doc =
      "Print the report's schema outline (sorted key paths with type \
       tags) to stdout — compared against the golden outline by $(b,make \
       report-check)."
    in
    Arg.(value & flag & info [ "schema" ] ~doc)
  in
  let load path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Dpm_util.Json.parse_string s
  in
  let run report trace schema =
    let fail scope msgs =
      List.iter (fun m -> Dpm_util.Log.error ~scope m) msgs;
      1
    in
    match load report with
    | Error m -> fail "report-check" [ report ^ ": " ^ m ]
    | exception Sys_error m -> fail "report-check" [ m ]
    | Ok doc -> (
        match Dpm_core.Report.validate doc with
        | Error msgs -> fail "report-check" msgs
        | Ok () -> (
            if schema then
              List.iter print_endline (Dpm_util.Json.schema_outline doc);
            match trace with
            | None -> 0
            | Some path -> (
                match load path with
                | Error m -> fail "trace-check" [ path ^ ": " ^ m ]
                | exception Sys_error m -> fail "trace-check" [ m ]
                | Ok tdoc -> (
                    match Dpm_util.Telemetry.validate_chrome tdoc with
                    | Error msgs -> fail "trace-check" msgs
                    | Ok () ->
                        Dpm_util.Log.info ~scope:"report-check"
                          ~kv:[ ("report", report); ("trace", path) ]
                          "artifacts ok";
                        0))))
  in
  Cmd.v
    (Cmd.info "report-check"
       ~doc:
         "Validate a run report (schema, required fields, invariant \
          verdicts) and optionally a Chrome trace (parseable, non-empty, \
          balanced B/E events).  Exit 1 on any violation.")
    Term.(const run $ report_arg $ trace_file_arg $ schema_arg)

(* --- aggregate: fleet dashboard over a sweep directory --- *)

let aggregate_cmd =
  let paths_arg =
    let doc =
      "Directories and/or files to aggregate: $(b,dpm-report/1) JSON \
       documents ($(b,dpmsim report -o)) and $(b,dpm-meter/1) JSONL \
       sample files ($(b,dpmsim simulate --meter)).  Directories are \
       expanded to their files (sorted); anything that is neither \
       schema is skipped with a reason, never fatally."
    in
    Arg.(non_empty & pos_all string [] & info [] ~doc ~docv:"PATH")
  in
  let out_arg =
    let doc =
      "File to write the $(b,dpm-agg/1) JSON document to ($(b,-) for \
       stdout; omit to only print the text dashboard)."
    in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")
  in
  let md_arg =
    let doc = "Also render the dashboard as markdown to this file." in
    Arg.(value & opt (some string) None & info [ "md" ] ~doc ~docv:"FILE")
  in
  let run paths out md =
    let expand path =
      if Sys.file_exists path && Sys.is_directory path then begin
        let entries = Sys.readdir path in
        Array.sort compare entries;
        Ok (List.map (Filename.concat path) (Array.to_list entries))
      end
      else if Sys.file_exists path then Ok [ path ]
      else Error (path ^ ": no such file or directory")
    in
    let files, errors =
      List.fold_left
        (fun (fs, es) p ->
          match expand p with
          | Ok l -> (fs @ l, es)
          | Error m -> (fs, m :: es))
        ([], []) paths
    in
    if errors <> [] then begin
      List.iter
        (fun m -> Dpm_util.Log.error ~scope:"aggregate" m)
        (List.rev errors);
      2
    end
    else begin
      let agg = Dpm_core.Aggregate.of_files files in
      let doc = Dpm_core.Aggregate.to_json agg in
      match Dpm_core.Aggregate.validate doc with
      | Error msgs ->
          List.iter (fun m -> Dpm_util.Log.error ~scope:"aggregate" m) msgs;
          1
      | Ok () ->
          print_string (Dpm_core.Aggregate.render agg);
          (match out with
          | None -> ()
          | Some "-" ->
              print_newline ();
              print_string (Dpm_util.Json.to_string ~indent:1 doc ^ "\n")
          | Some path ->
              let oc = open_out path in
              output_string oc (Dpm_util.Json.to_string ~indent:1 doc ^ "\n");
              close_out oc;
              Dpm_util.Log.info ~scope:"aggregate"
                ~kv:[ ("file", path) ]
                "wrote dpm-agg/1 document");
          (match md with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc (Dpm_core.Aggregate.markdown agg);
              close_out oc;
              Dpm_util.Log.info ~scope:"aggregate"
                ~kv:[ ("file", path) ]
                "wrote markdown dashboard");
          0
    end
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:
         "Merge a sweep directory's run reports and power-meter sample \
          files into one fleet dashboard: per-scheme totals and \
          normalized-energy spread, exactly-merged telemetry histograms, \
          fleet-wide peak/mean power and per-disk-model energy \
          attribution (schema dpm-agg/1).  Exit 1 when the inputs \
          contain nothing aggregatable.")
    Term.(const run $ paths_arg $ out_arg $ md_arg)

(* --- sweep: auto-tuning parameter-space exploration --- *)

let sweep_cmd =
  let axes_arg =
    let doc =
      "Axes to sweep: $(b,;)-separated $(b,axis=v1,v2,...) clauses over \
       tpm-threshold, drpm-lower, drpm-upper, drpm-window, \
       drpm-idle-interval, drpm-floor-depth, queue-depth, \
       pm-call-overhead, pre-activation-lead, sched — e.g. \
       $(b,\"tpm-threshold=4,15.2;drpm-lower=0.02,0.08\") or \
       $(b,\"sched=fcfs,sstf,scan;queue-depth=8,32\") (the categorical \
       $(b,sched) axis takes scheduler names)."
    in
    Arg.(
      required & opt (some string) None & info [ "axes" ] ~doc ~docv:"AXES")
  in
  let workloads_arg =
    let doc = "Benchmarks to sweep over (comma-separated)." in
    Arg.(
      value
      & opt (list string) [ "swim"; "galgel" ]
      & info [ "w"; "workloads" ] ~doc ~docv:"NAMES")
  in
  let sweep_schemes_arg =
    let doc =
      "Scheme(s) to compare at every grid point (Base is always added as \
       the normalization anchor; default: Base, TPM, DRPM, Adaptive, \
       ITPM)."
    in
    Arg.(
      value
      & opt (list Dpm_core.Scheme.conv) Dpm_core.Sweep.default_schemes
      & info [ "s"; "scheme" ] ~doc)
  in
  let output_dir_arg =
    let doc =
      "Directory to write artifacts into: $(b,sweep.json) (the \
       dpm-sweep/1 document) and one replayable \
       $(b,best-)$(i,BENCH)$(b,.spec.json) run-spec per workload winner \
       (each is re-executed on the spot to prove it reproduces the \
       winning row bit-for-bit)."
    in
    Arg.(
      value & opt (some string) None & info [ "output-dir" ] ~doc ~docv:"DIR")
  in
  let md_arg =
    let doc = "Also render the sweep report as markdown to this file." in
    Arg.(value & opt (some string) None & info [ "md" ] ~doc ~docv:"FILE")
  in
  let write_file path text =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text)
  in
  (* The replay gate: a persisted winning spec must reproduce its cell's
     numbers bit-for-bit ("%.17g" captures the exact doubles). *)
  let row_fingerprint results =
    String.concat "\n"
      (List.map
         (fun (s, (r : Dpm_sim.Result.t)) ->
           Printf.sprintf "%s %.17g %.17g" (Dpm_core.Scheme.name s)
             r.Dpm_sim.Result.energy r.Dpm_sim.Result.exec_time)
         results)
  in
  let run inst axes workloads schemes output_dir md =
    match Dpm_core.Sweep.axes_of_string axes with
    | Error m ->
        Dpm_util.Log.error ~scope:"sweep" ~kv:[ ("axes", axes) ] m;
        2
    | Ok [] ->
        Dpm_util.Log.error ~scope:"sweep" "no axes given";
        2
    | Ok axes -> (
        match Dpm_core.Sweep.run ~schemes ~axes ~workloads () with
        | Error e ->
            Dpm_util.Log.error ~scope:"sweep" (Dpm_core.Run.error_message e);
            2
        | Ok outcome -> (
            print_string (Dpm_core.Sweep.render outcome);
            let doc = Dpm_core.Sweep.to_json outcome in
            match Dpm_core.Sweep.validate doc with
            | Error msgs ->
                List.iter (fun m -> Dpm_util.Log.error ~scope:"sweep" m) msgs;
                1
            | Ok () ->
                (match md with
                | None -> ()
                | Some path ->
                    write_file path (Dpm_core.Sweep.markdown outcome);
                    Dpm_util.Log.info ~scope:"sweep"
                      ~kv:[ ("file", path) ]
                      "wrote markdown report");
                let rc = ref 0 in
                (match output_dir with
                | None -> ()
                | Some dir ->
                    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                    let json_path = Filename.concat dir "sweep.json" in
                    write_file json_path
                      (Dpm_util.Json.to_string ~indent:1 doc ^ "\n");
                    Dpm_util.Log.info ~scope:"sweep"
                      ~kv:[ ("file", json_path) ]
                      "wrote dpm-sweep/1 document";
                    List.iter
                      (fun (_, (cell : Dpm_core.Sweep.cell), _) ->
                        let w = cell.Dpm_core.Sweep.workload in
                        let path =
                          Filename.concat dir ("best-" ^ w ^ ".spec.json")
                        in
                        let replay =
                          Result.bind
                            (Option.to_result
                               ~none:
                                 (Dpm_core.Run.Run_failure "no winning spec")
                               (Dpm_core.Sweep.best_spec outcome ~workload:w))
                            (fun spec ->
                              Result.bind (Dpm_core.Run.to_file spec path)
                                (fun () ->
                                  Result.bind (Dpm_core.Run.of_file path)
                                    Dpm_core.Run.exec_all))
                        in
                        match replay with
                        | Error e ->
                            Dpm_util.Log.error ~scope:"sweep"
                              ~kv:[ ("file", path) ]
                              (Dpm_core.Run.error_message e);
                            rc := 1
                        | Ok results ->
                            if
                              String.equal
                                (row_fingerprint cell.Dpm_core.Sweep.results)
                                (row_fingerprint results)
                            then
                              Dpm_util.Log.info ~scope:"sweep"
                                ~kv:[ ("file", path) ]
                                "winning spec replayed bit-identically"
                            else begin
                              Dpm_util.Log.error ~scope:"sweep"
                                ~kv:[ ("file", path) ]
                                "replayed spec diverged from the sweep cell";
                              rc := 1
                            end)
                      (Dpm_core.Sweep.winners outcome));
                report_metrics inst;
                !rc))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Explore a grid over the simulator-configuration knobs: run every \
          (workload x point) cell under the requested schemes in parallel, \
          print best-configuration and per-axis sensitivity tables, and \
          optionally persist the dpm-sweep/1 document plus a replayable \
          run-spec for each workload's winning configuration.")
    Term.(
      const run $ instrument_term $ axes_arg $ workloads_arg
      $ sweep_schemes_arg $ output_dir_arg $ md_arg)

(* --- serve / submit: the fleet simulation service --- *)

let socket_arg =
  let doc =
    "Service address: a Unix socket path, or $(b,HOST:PORT) (numeric \
     port) for TCP."
  in
  Arg.(
    value & opt string "dpmsim.sock" & info [ "socket" ] ~doc ~docv:"ADDR")

let port_arg =
  let doc = "Shorthand for $(b,--socket 127.0.0.1:PORT)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~doc ~docv:"PORT")

let address_of ~socket ~port =
  match port with
  | Some p -> Dpm_core.Service.Net.Tcp { host = "127.0.0.1"; port = p }
  | None -> Dpm_core.Service.Net.address_of_string socket

let serve_cmd =
  let queue_arg =
    let doc =
      "Admission-queue depth: how many jobs may wait for a worker; \
       beyond it submissions are rejected with the typed \
       $(b,queue-full) error and its $(b,retry_after) hint (running \
       jobs don't count)."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~doc ~docv:"N")
  in
  let retry_after_arg =
    let doc = "Retry hint (seconds) carried by queue-full rejections." in
    Arg.(value & opt float 1.0 & info [ "retry-after" ] ~doc ~docv:"SECONDS")
  in
  let run inst socket port queue retry_after =
    let address = address_of ~socket ~port in
    match Dpm_core.Service.create ~queue ~retry_after () with
    | exception Invalid_argument m ->
        Dpm_util.Log.error ~scope:"serve" m;
        2
    | service -> (
        Dpm_util.Log.info ~scope:"serve"
          ~kv:
            [
              ( "address",
                Dpm_core.Service.Net.address_to_string address );
              ("queue", string_of_int queue);
            ]
          "serving";
        match Dpm_core.Service.Net.serve service address with
        | () ->
            let st = Dpm_core.Service.stats service in
            Dpm_util.Log.info ~scope:"serve"
              ~kv:
                [
                  ("completed", string_of_int st.Dpm_core.Service.completed);
                  ("rejected", string_of_int st.Dpm_core.Service.rejected);
                ]
              "drained and stopped";
            report_metrics inst;
            0
        | exception Unix.Unix_error (e, fn, arg) ->
            Dpm_util.Log.error ~scope:"serve"
              ~kv:[ ("syscall", fn); ("arg", arg) ]
              (Unix.error_message e);
            2)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fleet simulation daemon: accept dpm-spec/1 jobs over a \
          Unix or TCP socket, schedule them across the domain pool behind \
          a bounded admission queue (explicit queue-full backpressure), \
          and stream each job's dpm-report/1 document — plus live \
          dpm-meter/1 power samples for metered jobs — back over the \
          connection.  Daemon runs are bit-identical to direct `dpmsim \
          simulate` of the same spec.  Exits when a client sends the \
          shutdown op, after draining every admitted job.")
    Term.(
      const run $ instrument_term $ socket_arg $ port_arg $ queue_arg
      $ retry_after_arg)

let submit_cmd =
  let specs_arg =
    let doc = "dpm-spec/1 run-spec file(s) to submit, in order." in
    Arg.(value & pos_all file [] & info [] ~doc ~docv:"SPEC")
  in
  let meter_res_arg =
    let doc =
      "Meter every job at this resolution (seconds per window): the \
       daemon streams live per-scheme power samples, and the client \
       checks each scheme's sample integral against the report's energy \
       column (1e-6 relative)."
    in
    Arg.(
      value & opt (some float) None & info [ "meter" ] ~doc ~docv:"SECONDS")
  in
  let out_dir_arg =
    let doc = "Write each job's dpm-report/1 document into this directory." in
    Arg.(
      value & opt (some string) None & info [ "o"; "output-dir" ] ~doc ~docv:"DIR")
  in
  let shutdown_flag =
    let doc = "After the last job, ask the daemon to drain and exit." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  (* One scheme row of the results table, straight from the report
     document — same format string as [print_results_table], so a
     daemon-run table diffs cleanly against `dpmsim simulate`'s. *)
  let print_report_table report =
    let num k j =
      Option.value ~default:Float.nan
        (Option.bind (Dpm_util.Json.member k j) Dpm_util.Json.to_float)
    in
    Printf.printf "%-8s %12s %10s %8s %8s\n" "scheme" "energy(J)" "time(s)"
      "E/base" "T/base";
    List.iter
      (fun row ->
        Printf.printf "%-8s %12.2f %10.2f %8.3f %8.3f\n"
          (Option.value ~default:"?"
             (Option.bind
                (Dpm_util.Json.member "scheme" row)
                Dpm_util.Json.to_str))
          (num "energy_j" row) (num "exec_time_s" row) (num "energy_norm" row)
          (num "time_norm" row))
      (Option.value ~default:[]
         (Option.bind
            (Dpm_util.Json.member "schemes" report)
            Dpm_util.Json.to_list))
  in
  (* Client-side integral of the streamed samples, per scheme, in
     arrival order — the wire carries %.17g floats, so this reproduces
     the daemon's own integral bit-for-bit. *)
  let check_meters ~acc report =
    List.iter
      (fun row ->
        let scheme =
          Option.value ~default:"?"
            (Option.bind
               (Dpm_util.Json.member "scheme" row)
               Dpm_util.Json.to_str)
        in
        let energy =
          Option.value ~default:Float.nan
            (Option.bind
               (Dpm_util.Json.member "energy_j" row)
               Dpm_util.Json.to_float)
        in
        let integral, samples =
          Option.value ~default:(0.0, 0) (Hashtbl.find_opt acc scheme)
        in
        let rel =
          if energy = 0.0 then abs_float integral
          else abs_float (integral -. energy) /. energy
        in
        Printf.printf "meter %-8s samples=%d integral=%.2f J energy=%.2f J %s\n"
          scheme samples integral energy
          (if rel <= 1e-6 then "ok" else "MISMATCH"))
      (Option.value ~default:[]
         (Option.bind
            (Dpm_util.Json.member "schemes" report)
            Dpm_util.Json.to_list))
  in
  let run inst socket port specs meter out_dir shutdown_f =
    let address = address_of ~socket ~port in
    match Dpm_core.Service.Net.connect address with
    | Error e ->
        Dpm_util.Log.error ~scope:"submit" (Dpm_core.Run.error_message e);
        2
    | Ok client ->
        Fun.protect
          ~finally:(fun () -> Dpm_core.Service.Net.close client)
          (fun () ->
            let rc = ref 0 in
            (match out_dir with
            | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
            | _ -> ());
            List.iter
              (fun file ->
                match Dpm_core.Run.of_file file with
                | Error e ->
                    Dpm_util.Log.error ~scope:"submit" ~kv:[ ("spec", file) ]
                      (Dpm_core.Run.error_message e);
                    rc := 2
                | Ok spec ->
                    let acc = Hashtbl.create 8 in
                    let on_sample ~scheme (s : Dpm_sim.Meter.sample) =
                      let integral, n =
                        Option.value ~default:(0.0, 0)
                          (Hashtbl.find_opt acc scheme)
                      in
                      Hashtbl.replace acc scheme
                        ( integral
                          +. (s.Dpm_sim.Meter.watts
                             *. (s.Dpm_sim.Meter.t1 -. s.Dpm_sim.Meter.t0)),
                          n + 1 )
                    in
                    (* The client owns the retry loop: queue-full
                       rejections back off by the daemon's own hint. *)
                    let rec go retries =
                      match
                        Dpm_core.Service.Net.submit ?meter ~on_sample client
                          spec
                      with
                      | Error (Dpm_core.Run.Queue_full { retry_after })
                        when retries > 0 ->
                          Dpm_util.Log.info ~scope:"submit"
                            ~kv:[ ("spec", file) ]
                            (Printf.sprintf "queue full; retrying in %gs"
                               retry_after);
                          Thread.delay retry_after;
                          go (retries - 1)
                      | r -> r
                    in
                    (match go 600 with
                    | Error e ->
                        Dpm_util.Log.error ~scope:"submit"
                          ~kv:[ ("spec", file) ]
                          (Dpm_core.Run.error_message e);
                        rc := 1
                    | Ok (id, report) ->
                        Printf.printf "== job %d: %s ==\n" id
                          (Filename.basename file);
                        print_report_table report;
                        if meter <> None then check_meters ~acc report;
                        (match out_dir with
                        | None -> ()
                        | Some dir ->
                            let path =
                              Filename.concat dir
                                (Printf.sprintf "job-%d.report.json" id)
                            in
                            let oc = open_out path in
                            Fun.protect
                              ~finally:(fun () -> close_out_noerr oc)
                              (fun () ->
                                output_string oc
                                  (Dpm_util.Json.to_string ~indent:1 report);
                                output_char oc '\n'))))
              specs;
            (if shutdown_f then
               match Dpm_core.Service.Net.shutdown client with
               | Ok completed ->
                   Printf.printf "shutdown: daemon drained, %d job%s completed\n"
                     completed
                     (if completed = 1 then "" else "s")
               | Error e ->
                   Dpm_util.Log.error ~scope:"submit"
                     (Dpm_core.Run.error_message e);
                   rc := 1);
            report_metrics inst;
            !rc)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit dpm-spec/1 run-spec files to a running `dpmsim serve` \
          daemon, print each job's results table (and, with $(b,--meter), \
          verify the streamed power samples integrate to the report's \
          energy column), optionally saving the dpm-report/1 documents.  \
          Queue-full rejections are retried after the daemon's \
          retry_after hint.")
    Term.(
      const run $ instrument_term $ socket_arg $ port_arg $ specs_arg
      $ meter_res_arg $ out_dir_arg $ shutdown_flag)

let () =
  let doc =
    "Software-directed disk power management (IPDPS'05 reproduction)."
  in
  let info = Cmd.info "dpmsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            show_cmd;
            simulate_cmd;
            compile_cmd;
            dap_cmd;
            transform_cmd;
            trace_cmd;
            timeline_cmd;
            figure_cmd;
            report_cmd;
            report_check_cmd;
            aggregate_cmd;
            sweep_cmd;
            serve_cmd;
            submit_cmd;
          ]))
