(* dpmsim: command-line driver for the compiler-directed disk power
   management pipeline.

   Subcommands: list, show, simulate, compile, dap, transform, trace,
   figure.  Run `dpmsim --help` or `dpmsim CMD --help`. *)

open Cmdliner

let spec_of_name name =
  try Dpm_workloads.Suite.find name
  with Not_found ->
    Printf.eprintf "unknown benchmark %S (try `dpmsim list`)\n" name;
    exit 2

let workload name =
  let spec = spec_of_name name in
  let p, plan = Dpm_core.Experiment.workload spec in
  (spec, p, plan)

let bench_arg =
  let doc = "Benchmark name (wupwise, swim, mgrid, applu, mesa, galgel)." in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~doc)

let version_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "orig" -> Ok Dpm_compiler.Pipeline.Orig
    | "lf" -> Ok Dpm_compiler.Pipeline.LF
    | "tl" -> Ok Dpm_compiler.Pipeline.TL
    | "lf+dl" | "lfdl" -> Ok Dpm_compiler.Pipeline.LF_DL
    | "tl+dl" | "tldl" -> Ok Dpm_compiler.Pipeline.TL_DL
    | _ -> Error (`Msg "expected one of: orig, LF, TL, LF+DL, TL+DL")
  in
  let print ppf v =
    Format.pp_print_string ppf (Dpm_compiler.Pipeline.version_name v)
  in
  Arg.conv (parse, print)

let version_arg =
  let doc = "Code transformation version (orig, LF, TL, LF+DL, TL+DL)." in
  Arg.(
    value
    & opt version_conv Dpm_compiler.Pipeline.Orig
    & info [ "t"; "transform" ] ~doc)

let mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "open" -> Ok `Open
    | "closed" -> Ok `Closed
    | _ -> Error (`Msg "expected open or closed")
  in
  let print ppf v =
    Format.pp_print_string ppf (match v with `Open -> "open" | `Closed -> "closed")
  in
  Arg.conv (parse, print)

let mode_arg =
  let doc = "Replay model: open (the paper's trace-driven model) or closed." in
  Arg.(value & opt mode_conv `Open & info [ "mode" ] ~doc)

(* --- shared instrumentation flags (--domains / --metrics) --- *)

let domains_arg =
  let doc =
    "Number of domains experiment grids fan out over (results are \
     bit-identical whatever the value; default: the runtime's \
     recommended count, or $(b,DPM_DOMAINS))."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")

let metrics_arg =
  let doc =
    "Print per-stage wall time (workload build, compile, trace \
     generation, replay) and throughput counters after the command."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Evaluates before the command body: applies the domain override,
   enables the global collector, and returns whether to print the report
   afterwards. *)
let instrument_term =
  let apply domains metrics =
    Option.iter Dpm_util.Pool.set_default_domains domains;
    if metrics then Dpm_util.Metrics.(set_enabled global true);
    metrics
  in
  Term.(const apply $ domains_arg $ metrics_arg)

let report_metrics metrics =
  if metrics then print_string Dpm_util.Metrics.(report global)

(* --- list --- *)

let list_cmd =
  let run () =
    Printf.printf "%-9s %8s %10s %12s %10s %7s\n" "name" "MB" "requests"
      "energy(J)" "time(s)" "noise";
    List.iter
      (fun (s : Dpm_workloads.Suite.spec) ->
        Printf.printf "%-9s %8.1f %10d %12.2f %10.2f %7.2f\n" s.name s.data_mb
          s.requests s.base_energy_j s.exec_time_s s.noise)
      Dpm_workloads.Suite.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark suite (paper Table 2 targets).")
    Term.(const run $ const ())

(* --- show: print a benchmark's DSL source --- *)

let show_cmd =
  let run name =
    let spec = spec_of_name name in
    print_string (spec.Dpm_workloads.Suite.source ());
    0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a benchmark's loop-nest DSL source.")
    Term.(const run $ bench_arg)

(* --- simulate --- *)

let schemes_arg =
  let doc = "Scheme(s) to simulate (default: all seven)." in
  Arg.(
    value
    & opt (list Dpm_core.Scheme.conv) Dpm_core.Scheme.all
    & info [ "s"; "scheme" ] ~doc)

let faults_conv =
  let parse s =
    match Dpm_sim.Fault.of_string s with
    | Ok f -> Ok f
    | Error m ->
        Error
          (`Msg
            (Printf.sprintf
               "bad fault spec: %s (format: comma-separated key=value over \
                seed, read, bad, badlen, spinfail, retries, backoff, remap, \
                fail=DISK@TIME;... — e.g. \
                \"seed=7,read=0.01,bad=0.005,spinfail=0.25,fail=0@30\")"
               m))
  in
  Arg.conv
    (parse, fun ppf f -> Format.pp_print_string ppf (Dpm_sim.Fault.to_string f))

let faults_arg =
  let doc =
    "Inject deterministic faults: transient read errors ($(b,read)), \
     bad-sector regions ($(b,bad)/$(b,badlen)), sticking spin-ups \
     ($(b,spinfail)) with bounded retry + exponential backoff \
     ($(b,retries)/$(b,backoff)), remap penalties ($(b,remap)) and \
     whole-disk failures ($(b,fail=DISK\\@TIME)), all seeded by $(b,seed)."
  in
  Arg.(value & opt (some faults_conv) None & info [ "faults" ] ~doc ~docv:"SPEC")

let timeline_arg =
  let doc =
    "Record per-disk event timelines while simulating.  $(b,-) prints a \
     per-scheme summary (residency table, Gantt lanes, independently \
     re-integrated energy and the invariant-check verdict) after the \
     results table; any other value is a file to write, as JSONL (one \
     labelled section per scheme) or as CSV when the name ends in \
     $(b,.csv).  Recording is observational: the results table is \
     byte-identical with or without this flag."
  in
  Arg.(value & opt (some string) None & info [ "timeline" ] ~doc ~docv:"FILE")

let simulate_cmd =
  let run metrics name schemes version mode faults timeline =
    (* Base joins the run for normalization even when not requested. *)
    let run_schemes =
      if List.mem Dpm_core.Scheme.Base schemes then schemes
      else Dpm_core.Scheme.Base :: schemes
    in
    let sinks =
      match timeline with
      | None -> []
      | Some _ ->
          List.map (fun s -> (s, Dpm_sim.Timeline.sink ())) run_schemes
    in
    let rspec =
      Dpm_core.Run.spec ~schemes:run_schemes ~mode ~version ?faults
        ?timeline:
          (match sinks with
          | [] -> None
          | _ -> Some (fun s -> List.assoc_opt s sinks))
        (Dpm_core.Run.Benchmark name)
    in
    match Dpm_core.Run.exec_all rspec with
    | Error e ->
        Printf.eprintf "dpmsim: %s\n" (Dpm_core.Run.error_message e);
        2
    | Ok results ->
        let base = List.assoc Dpm_core.Scheme.Base results in
        let shown =
          List.filter (fun (s, _) -> List.mem s schemes) results
        in
        Printf.printf "%-8s %12s %10s %8s %8s\n" "scheme" "energy(J)" "time(s)"
          "E/base" "T/base";
        List.iter
          (fun (s, (r : Dpm_sim.Result.t)) ->
            Printf.printf "%-8s %12.2f %10.2f %8.3f %8.3f\n"
              (Dpm_core.Scheme.name s) r.energy r.exec_time
              (Dpm_sim.Result.normalized_energy r ~base)
              (Dpm_sim.Result.normalized_time r ~base))
          shown;
        (if faults <> None then begin
           Printf.printf "\n%-8s %8s %10s %8s %11s %10s %7s\n" "scheme"
             "retries" "delay(s)" "remaps" "spinup-rec" "redirects" "failed";
           List.iter
             (fun (s, (r : Dpm_sim.Result.t)) ->
               let f = r.Dpm_sim.Result.faults in
               Printf.printf "%-8s %8d %10.3f %8d %11d %10d %7d\n"
                 (Dpm_core.Scheme.name s) f.Dpm_sim.Result.read_retries
                 f.Dpm_sim.Result.retry_delay f.Dpm_sim.Result.remaps
                 f.Dpm_sim.Result.spin_up_recoveries
                 f.Dpm_sim.Result.redirects f.Dpm_sim.Result.failed_disks)
             shown
         end);
        (match timeline with
        | None -> ()
        | Some dest ->
            let logs =
              List.filter_map
                (fun (s, _) ->
                  Option.map Dpm_sim.Timeline.contents (List.assoc_opt s sinks))
                shown
            in
            if dest = "-" then
              List.iter
                (fun tl ->
                  print_newline ();
                  print_string (Dpm_sim.Timeline.summary tl))
                logs
            else begin
              let oc = open_out dest in
              let write =
                if Filename.check_suffix dest ".csv" then
                  Dpm_sim.Timeline.write_csv
                else Dpm_sim.Timeline.write_jsonl
              in
              List.iter (fun tl -> write tl oc) logs;
              close_out oc;
              Printf.eprintf "dpmsim: wrote %d timeline section(s) to %s\n%!"
                (List.length logs) dest
            end);
        report_metrics metrics;
        0
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate a benchmark under one or more power-management schemes.")
    Term.(
      const run $ instrument_term $ bench_arg $ schemes_arg $ version_arg
      $ mode_arg $ faults_arg $ timeline_arg)

(* --- timeline: summarize a recorded event log --- *)

let timeline_cmd =
  let file_arg =
    let doc =
      "JSONL timeline file written by $(b,simulate --timeline) ($(b,-) \
       reads standard input)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FILE")
  in
  let run file =
    match
      let ic = if file = "-" then stdin else open_in file in
      Fun.protect
        ~finally:(fun () -> if ic != stdin then close_in_noerr ic)
        (fun () -> Dpm_sim.Timeline.read_jsonl ic)
    with
    | exception Sys_error m ->
        Printf.eprintf "dpmsim: %s\n" m;
        2
    | exception Failure m ->
        Printf.eprintf "dpmsim: %s\n" m;
        2
    | [] ->
        Printf.eprintf "dpmsim: no timeline sections in %s\n" file;
        2
    | logs ->
        List.iteri
          (fun i tl ->
            if i > 0 then print_newline ();
            print_string (Dpm_sim.Timeline.summary tl))
          logs;
        if
          List.for_all
            (fun tl -> Dpm_sim.Timeline.check tl = Ok ())
            logs
        then 0
        else 1
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Summarize recorded event timelines: per-disk residencies, Gantt \
          lanes, independently re-integrated energy and the state-machine \
          invariant check (exit 1 on violations).")
    Term.(const run $ file_arg)

(* --- compile: print the instrumented program --- *)

let compile_cmd =
  let run name version =
    let spec, p, plan = workload name in
    let p, plan = Dpm_compiler.Pipeline.transform version p plan in
    let compiled =
      Dpm_compiler.Pipeline.compile ~scheme:Dpm_compiler.Insertion.Drpm
        ~noise:spec.Dpm_workloads.Suite.noise
        ~cache_blocks:Dpm_workloads.Suite.cache_blocks
        ~specs:Dpm_sim.Config.default.Dpm_sim.Config.specs p plan
    in
    print_string (Dpm_ir.Printer.program compiled.Dpm_compiler.Pipeline.program);
    Printf.printf "\n# %d power-management decisions\n"
      (List.length compiled.Dpm_compiler.Pipeline.decisions);
    0
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Run the proactive CMDRPM compilation and print the instrumented \
          code with its inserted set_rpm calls.")
    Term.(const run $ bench_arg $ version_arg)

(* --- dap --- *)

let disk_arg =
  let doc = "Disk id to print the DAP for." in
  Arg.(value & opt int 0 & info [ "d"; "disk" ] ~doc)

let dap_cmd =
  let run name disk version =
    let spec, p, plan = workload name in
    let p, plan = Dpm_compiler.Pipeline.transform version p plan in
    let activities =
      Dpm_compiler.Access.of_program_cached
        ~cache_blocks:Dpm_workloads.Suite.cache_blocks p plan
    in
    let est =
      Dpm_compiler.Estimate.profile
        ~cache_blocks:Dpm_workloads.Suite.cache_blocks
        ~specs:Dpm_sim.Config.default.Dpm_sim.Config.specs p plan
    in
    ignore spec;
    let dap = Dpm_compiler.Dap.build activities est in
    Format.printf "@[<v>%a@]@." (Dpm_compiler.Dap.pp_disk activities)
      (dap, disk);
    0
  in
  Cmd.v
    (Cmd.info "dap"
       ~doc:"Print a disk's access pattern (the paper's Figure 2(c) form).")
    Term.(const run $ bench_arg $ disk_arg $ version_arg)

(* --- transform --- *)

let transform_cmd =
  let run name version =
    let _, p, plan = workload name in
    let p', plan' = Dpm_compiler.Pipeline.transform version p plan in
    print_string (Dpm_ir.Printer.program p');
    Format.printf "@.%a@." Dpm_layout.Plan.pp plan';
    0
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Apply a code/layout transformation and print the result.")
    Term.(const run $ bench_arg $ version_arg)

(* --- trace --- *)

let trace_cmd =
  let out_arg =
    let doc = "File to save the trace to (omit to print a summary)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let run name version out =
    let _, p, plan = workload name in
    let p, plan = Dpm_compiler.Pipeline.transform version p plan in
    let trace = Dpm_trace.Generate.run p plan in
    (match out with
    | Some path ->
        Dpm_trace.Trace.save trace path;
        Printf.printf "saved %d events to %s\n" (Array.length trace.events) path
    | None ->
        Printf.printf
          "program=%s ndisks=%d io=%d pm=%d bytes=%d think=%.2fs\n"
          trace.program trace.ndisks
          (Dpm_trace.Trace.io_count trace)
          (Dpm_trace.Trace.pm_count trace)
          (Dpm_trace.Trace.total_bytes trace)
          (Dpm_trace.Trace.total_think trace));
    0
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate (and optionally save) an I/O trace.")
    Term.(const run $ bench_arg $ version_arg $ out_arg)

(* --- figure --- *)

let figure_cmd =
  let fig_arg =
    let doc = "Figure/table id (table1 table2 table3 fig3..fig8 fig13 ablation-closed)." in
    Arg.(non_empty & pos_all string [] & info [] ~doc ~docv:"ID")
  in
  let run metrics ids =
    let available =
      [
        ("table1", Dpm_core.Figures.table1);
        ("table2", Dpm_core.Figures.table2);
        ("fig3", Dpm_core.Figures.fig3);
        ("fig4", Dpm_core.Figures.fig4);
        ("table3", Dpm_core.Figures.table3);
        ("fig5", Dpm_core.Figures.fig5);
        ("fig6", Dpm_core.Figures.fig6);
        ("fig7", Dpm_core.Figures.fig7);
        ("fig8", Dpm_core.Figures.fig8);
        ("fig13", Dpm_core.Figures.fig13);
        ("ext", Dpm_core.Figures.extensions);
        ("ext-shared", Dpm_core.Figures.shared_subsystem);
        ("ablation-knobs", Dpm_core.Figures.knob_ablation);
        ("ablation-closed", Dpm_core.Figures.closed_loop_ablation);
        ("fault-sweep", Dpm_core.Figures.fault_sweep);
        ("fig3-degraded", fun () -> Dpm_core.Figures.degraded_grid ());
      ]
    in
    let rc =
      List.fold_left
        (fun rc id ->
          match List.assoc_opt id available with
          | Some f ->
              print_string (f ()).Dpm_core.Figures.rendered;
              print_newline ();
              rc
          | None ->
              Printf.eprintf "unknown figure %S\n" id;
              2)
        0 ids
    in
    report_metrics metrics;
    rc
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's tables/figures.")
    Term.(const run $ instrument_term $ fig_arg)

let () =
  let doc =
    "Software-directed disk power management (IPDPS'05 reproduction)."
  in
  let info = Cmd.info "dpmsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            show_cmd;
            simulate_cmd;
            compile_cmd;
            dap_cmd;
            transform_cmd;
            trace_cmd;
            timeline_cmd;
            figure_cmd;
          ]))
